"""WebBench-style closed-loop load generation (§5.1).

"We used 24 Pentium 300 MHz machines (with 64 M RAM) to generate a
synthetic workload ... Each machine runs four WebBench client programs that
emit a stream of Web requests, and measure the system response."

WebBench clients are *closed-loop*: each client issues a request, waits for
the full response, then immediately (or after a think time) issues the
next.  Throughput is requests completed per second inside the measurement
window, reported overall and per content class -- exactly the metric
Figures 2-4 plot.

Clients are spread over simulated client machines (default 24) whose NICs
the request/response bytes traverse, so the client side is never an
infinite-bandwidth fiction.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Generator, Optional

from ..content import ContentType
from ..net import Nic
from ..sim import (Histogram, Interrupt, RngStream, Simulator,
                   ThroughputMeter)
from .sampler import RequestSampler

__all__ = ["ClientStats", "WebBenchClient", "WebBenchRig"]

#: Pause before retrying after a front-end failure (failover experiments).
RETRY_BACKOFF = 0.25


@dataclasses.dataclass
class ClientStats:
    """Client-side measurements (what WebBench reported)."""

    completed: int = 0
    errors: int = 0
    bytes_received: int = 0


class WebBenchClient:
    """One closed-loop client program."""

    def __init__(self, sim: Simulator, client_id: str,
                 submit: Callable, sampler: RequestSampler, nic: Nic,
                 rig: "WebBenchRig",
                 think_time: float = 0.0,
                 rng: Optional[RngStream] = None):
        self.sim = sim
        self.client_id = client_id
        self.submit = submit
        self.sampler = sampler
        self.nic = nic
        self.rig = rig
        self.think_time = think_time
        self.rng = rng or RngStream(0, f"client/{client_id}")
        self.stats = ClientStats()
        #: think-time waits served by the pooled O(1) timer (fast path
        #: only; observability counter, mirrors ``Lan.fast_transfers``)
        self.fast_thinks = 0
        self._drain = False
        self.process = sim.process(self._run(), name=f"wb:{client_id}")

    def drain(self) -> None:
        """Finish the in-flight request (if any), then exit the loop.

        Unlike :meth:`stop`, draining never interrupts a request mid-
        flight, so after the drain completes every request has either been
        answered or cleanly errored -- the chaos harness's first survival
        property.
        """
        self._drain = True

    def _run(self) -> Generator:
        while not self._drain:
            request = self.sampler.request(client_id=self.client_id,
                                           now=self.sim.now)
            try:
                outcome = yield self.sim.process(
                    self.submit(request, self.nic))
            except Interrupt:
                return  # stopped by the rig
            except Exception:
                # front end down (failover window) or mid-flight crash:
                # a real client sees a connection error and retries
                self.stats.errors += 1
                self.rig.record_error(self.sim.now)
                if self._drain:
                    return
                yield self.sim.timeout(RETRY_BACKOFF)
                continue
            if outcome.response is not None and outcome.response.ok:
                self.stats.completed += 1
                self.stats.bytes_received += outcome.response.content_length
                self.rig.record_completion(request, outcome)
            else:
                self.stats.errors += 1
                status = (outcome.response.status
                          if outcome.response is not None else None)
                self.rig.record_error(self.sim.now, status=status)
                # a shed request carries Retry-After; honouring it is what
                # keeps zero-think-time clients from hammering an already
                # overloaded front end in a zero-delay loop
                retry_after = getattr(outcome, "retry_after", 0.0)
                if retry_after > 0:
                    yield self.sim.timeout(retry_after)
            if self.think_time > 0:
                delay = self.rng.expovariate(1.0 / self.think_time)
                if self.sim.fast_path:
                    # O(1) collapse: the wait stays a single scheduled
                    # event, served from the kernel's recycled-timer pool
                    self.fast_thinks += 1
                    yield self.sim.hot_timeout(delay)
                else:
                    yield self.sim.timeout(delay)

    def stop(self) -> None:
        if self.process.is_alive:
            self.process.interrupt("stopped")


class WebBenchRig:
    """A fleet of client machines running closed-loop clients.

    Client-side accounting is independent of any front-end internals, so
    the same rig measures a plain distributor, the L4 baseline, or an HA
    pair.
    """

    def __init__(self, sim: Simulator, submit: Callable,
                 sampler: RequestSampler,
                 n_machines: int = 24,
                 machine_nic_mbps: float = 100.0,
                 warmup: float = 0.0,
                 think_time: float = 0.0,
                 rng: Optional[RngStream] = None):
        if n_machines < 1:
            raise ValueError("need at least one client machine")
        self.sim = sim
        self.submit = submit
        self.sampler = sampler
        self.warmup = warmup
        self.think_time = think_time
        self.rng = rng or RngStream(0, "rig")
        self.machine_nics = [Nic(sim, machine_nic_mbps, name=f"cm{i}.nic")
                             for i in range(n_machines)]
        self.clients: list[WebBenchClient] = []
        self.meter = ThroughputMeter(warmup=warmup, name="rig")
        self.class_meters: dict[ContentType, ThroughputMeter] = {
            t: ThroughputMeter(warmup=warmup, name=t.value)
            for t in ContentType}
        self.latency = Histogram(low=1e-5, high=100.0, name="latency")
        self.class_latency: dict[ContentType, Histogram] = {
            t: Histogram(low=1e-5, high=100.0, name=f"latency/{t.value}")
            for t in ContentType}
        self.errors = 0
        #: client-observed error statuses (None = transport-level failure);
        #: the overload survival property "every shed is a clean 503" is
        #: checked against this
        self.error_statuses: dict[Optional[int], int] = {}
        self.first_error_at: Optional[float] = None
        self.last_error_at: Optional[float] = None
        #: clients launched by a FlashCrowd burst, drained on revert
        self._burst: list[WebBenchClient] = []

    def start_clients(self, n_clients: int) -> None:
        """Launch ``n_clients`` spread round-robin over the machines."""
        if n_clients < 1:
            raise ValueError("need at least one client")
        base = len(self.clients)
        for i in range(n_clients):
            idx = base + i
            nic = self.machine_nics[idx % len(self.machine_nics)]
            client = WebBenchClient(
                self.sim, client_id=f"c{idx:03d}", submit=self.submit,
                sampler=self.sampler, nic=nic, rig=self,
                think_time=self.think_time,
                rng=self.rng.substream(f"client/{idx}"))
            self.clients.append(client)

    def stop_clients(self) -> None:
        for client in self.clients:
            client.stop()

    def request_stop(self) -> None:
        """Ask every client to drain: finish in flight, then stop."""
        for client in self.clients:
            client.drain()

    # -- flash-crowd bursts (driven by repro.chaos.FlashCrowd) -------------
    @property
    def steady_clients(self) -> int:
        """Clients that are not part of a burst."""
        return len(self.clients) - len(self._burst)

    def start_burst(self, n_clients: int) -> None:
        """Launch extra closed-loop clients for the duration of a burst."""
        before = len(self.clients)
        self.start_clients(n_clients)
        self._burst.extend(self.clients[before:])

    def drain_burst(self) -> None:
        """End the burst: its clients finish in flight, then exit."""
        for client in self._burst:
            client.drain()
        self._burst.clear()

    # -- accounting (called by clients) -----------------------------------
    def record_completion(self, request, outcome) -> None:
        now = self.sim.now
        resp = outcome.response
        self.meter.record(now, nbytes=resp.content_length)
        if now >= self.warmup:
            self.latency.observe(outcome.latency)
        ctype = ContentType.from_path(request.url)
        self.class_meters[ctype].record(now, nbytes=resp.content_length)
        if now >= self.warmup:
            self.class_latency[ctype].observe(outcome.latency)

    def record_error(self, now: float, status: Optional[int] = None) -> None:
        self.errors += 1
        self.error_statuses[status] = self.error_statuses.get(status, 0) + 1
        if self.first_error_at is None:
            self.first_error_at = now
        self.last_error_at = now

    # -- results -----------------------------------------------------------
    def throughput(self, horizon: float) -> float:
        """Requests/second inside [warmup, horizon] -- the WebBench metric."""
        return self.meter.requests_per_second(horizon)

    def class_throughput(self, ctype: ContentType, horizon: float) -> float:
        return self.class_meters[ctype].requests_per_second(horizon)

    def summary(self, horizon: float) -> dict:
        return {
            "clients": len(self.clients),
            "throughput_rps": self.throughput(horizon),
            "bytes_per_s": self.meter.bytes_per_second(horizon),
            "completed": self.meter.completions,
            "errors": self.errors,
            "latency_p50": self.latency.percentile(50),
            "latency_p95": self.latency.percentile(95),
            "by_class": {
                t.value: self.class_throughput(t, horizon)
                for t in ContentType
                if self.class_meters[t].completions},
        }
