"""Open-loop trace workloads: record, persist, and replay request streams.

WebBench (the paper's load generator) is closed-loop: throughput is capped
by client count.  An *open-loop* trace -- requests arriving at timestamps
regardless of completions -- is what server-side access logs look like, and
is the right tool for latency-vs-offered-load studies: the system either
keeps up or queues grow without bound.

A trace is a list of (timestamp, url) entries.  Traces can be generated
synthetically (Poisson arrivals over a workload's request distribution),
saved/loaded as JSON lines (the interchange format for ops tooling), and
replayed against any front end.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Callable, Iterable, Optional

from ..net import HttpRequest, Nic
from ..sim import Histogram, Interrupt, RngStream, Simulator, ThroughputMeter
from .sampler import RequestSampler

__all__ = ["TraceEntry", "Trace", "generate_trace", "TraceReplayer"]


@dataclasses.dataclass(frozen=True, slots=True)
class TraceEntry:
    """One logged request: when it arrives and what it asks for."""

    at: float
    url: str

    def to_json(self) -> str:
        return json.dumps({"at": self.at, "url": self.url})

    @classmethod
    def from_json(cls, line: str) -> "TraceEntry":
        data = json.loads(line)
        return cls(at=float(data["at"]), url=str(data["url"]))


class Trace:
    """An ordered request log."""

    def __init__(self, entries: Iterable[TraceEntry] = ()):
        self.entries = sorted(entries, key=lambda e: e.at)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    @property
    def duration(self) -> float:
        return self.entries[-1].at if self.entries else 0.0

    def offered_load(self) -> float:
        """Mean arrival rate (requests/second) over the trace."""
        if len(self.entries) < 2 or self.duration == 0:
            return 0.0
        return len(self.entries) / self.duration

    def save(self, path: str | Path) -> None:
        """Write as JSON lines (one entry per line)."""
        with open(path, "w") as f:
            for entry in self.entries:
                f.write(entry.to_json() + "\n")

    @classmethod
    def load(cls, path: str | Path) -> "Trace":
        with open(path) as f:
            return cls(TraceEntry.from_json(line)
                       for line in f if line.strip())


def generate_trace(sampler: RequestSampler, rate: float, duration: float,
                   rng: Optional[RngStream] = None) -> Trace:
    """Synthesize a Poisson-arrival trace at ``rate`` requests/second."""
    if rate <= 0 or duration <= 0:
        raise ValueError("rate and duration must be positive")
    rng = rng or RngStream(0, "trace")
    entries = []
    t = 0.0
    while True:
        t += rng.expovariate(rate)
        if t >= duration:
            break
        entries.append(TraceEntry(at=t, url=sampler.sample_item().path))
    return Trace(entries)


class TraceReplayer:
    """Replays a trace against a front end at its recorded timestamps.

    Requests are issued open-loop: an arrival is dispatched even while
    earlier ones are still in flight.  Completions and latencies are
    collected so the caller can observe queueing onset (the hockey stick).
    """

    def __init__(self, sim: Simulator, submit: Callable, trace: Trace,
                 nic: Optional[Nic] = None, warmup: float = 0.0):
        self.sim = sim
        self.submit = submit
        self.trace = trace
        self.nic = nic or Nic(sim, 1000.0, name="trace-client")
        self.meter = ThroughputMeter(warmup=warmup, name="trace")
        self.latency = Histogram(low=1e-5, high=100.0, name="trace-latency")
        self.warmup = warmup
        self.issued = 0
        self.errors = 0
        self.in_flight = 0
        self.peak_in_flight = 0
        self._driver = sim.process(self._run(), name="trace-replayer")

    def _run(self):
        for entry in self.trace:
            delay = entry.at - self.sim.now
            if delay > 0:
                yield self.sim.timeout(delay)
            self.sim.process(self._one(entry))
        return self.issued

    def _one(self, entry: TraceEntry):
        self.issued += 1
        self.in_flight += 1
        self.peak_in_flight = max(self.peak_in_flight, self.in_flight)
        started = self.sim.now
        try:
            if self.sim.fast_path:
                # open-loop arrivals are never interrupted mid-flight, so
                # the spawn/join pair (3 events) collapses to an inline call
                outcome = yield from self.submit(
                    HttpRequest(entry.url, client_id="trace"), self.nic)
            else:
                outcome = yield self.sim.process(
                    self.submit(HttpRequest(entry.url, client_id="trace"),
                                self.nic))
        except Interrupt:
            self.in_flight -= 1
            return
        except Exception:
            self.errors += 1
            self.in_flight -= 1
            return
        self.in_flight -= 1
        response = outcome.response
        if response is not None and response.ok:
            self.meter.record(self.sim.now, nbytes=response.content_length)
            if self.sim.now >= self.warmup:
                self.latency.observe(self.sim.now - started)
        else:
            self.errors += 1

    def summary(self, horizon: float) -> dict:
        return {
            "issued": self.issued,
            "completed": self.meter.completions,
            "errors": self.errors,
            "offered_rps": self.trace.offered_load(),
            "achieved_rps": self.meter.requests_per_second(horizon),
            "latency_p50": self.latency.percentile(50),
            "latency_p95": self.latency.percentile(95),
            "latency_p99": self.latency.percentile(99),
            "peak_in_flight": self.peak_in_flight,
        }
