"""Workload definitions: the paper's Workload A and Workload B.

§5.1: "We created two workloads that model the Web server workload
characterization (e.g., file size, request distribution, file popularity,
etc.) published in papers [9,10,27].  The first workload (workload A)
consists of static content, and the second workload (Workload B) includes a
significant amount of dynamic content (e.g. CGI and ASP)."

A workload couples a *content inventory* (the catalog mix) with a *request
mix* (what fraction of requests target each class) and a popularity skew.
Request mixes follow the cited characterizations: images and HTML dominate
request counts; large multimedia files are requested rarely (Arlitt & Jin:
the large files receive ~0.1 % of requests); workload B adds a substantial
CGI/ASP share.
"""

from __future__ import annotations

import dataclasses

from ..content import DYNAMIC_MIX, STATIC_MIX, ContentType, TypeMix

__all__ = ["WorkloadSpec", "WORKLOAD_A", "WORKLOAD_B"]


@dataclasses.dataclass(frozen=True)
class WorkloadSpec:
    """Everything a load generator needs to know about a workload."""

    name: str
    catalog_mix: TypeMix
    #: probability that a request targets each content class
    request_mix: dict[ContentType, float]
    #: Zipf exponent of within-class document popularity
    zipf_alpha: float = 0.45
    #: mean client think time (s); WebBench-style saturation uses ~0
    think_time: float = 0.0
    #: number of objects in the synthetic site
    n_objects: int = 8700

    def __post_init__(self):
        total = sum(self.request_mix.values())
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"request mix must sum to 1.0, got {total}")
        for ctype, frac in self.request_mix.items():
            if frac < 0:
                raise ValueError(f"negative request fraction for {ctype}")
            if frac > 0 and getattr(self.catalog_mix, ctype.value) == 0:
                raise ValueError(
                    f"requests target {ctype} but the catalog has none")

    @property
    def dynamic_request_fraction(self) -> float:
        return sum(frac for ctype, frac in self.request_mix.items()
                   if ctype.is_dynamic)


#: Workload A: static content only (HTML, images, rare multimedia).
#: Large files receive a fraction of a percent of requests (Arlitt & Jin
#: report ~0.1 % for the biggest class).
WORKLOAD_A = WorkloadSpec(
    name="A",
    catalog_mix=STATIC_MIX,
    request_mix={
        ContentType.HTML: 0.385,
        ContentType.IMAGE: 0.610,
        ContentType.VIDEO: 0.001,
        ContentType.AUDIO: 0.004,
    },
)

#: Workload B: "a significant amount of dynamic content (e.g. CGI and ASP)".
WORKLOAD_B = WorkloadSpec(
    name="B",
    catalog_mix=DYNAMIC_MIX,
    request_mix={
        ContentType.HTML: 0.325,
        ContentType.IMAGE: 0.490,
        ContentType.CGI: 0.100,
        ContentType.ASP: 0.080,
        ContentType.VIDEO: 0.001,
        ContentType.AUDIO: 0.004,
    },
)
