"""Deterministic, seeded fault injection for the simulated testbed.

The paper's architecture exists to survive failures -- §2.3's
primary/backup distributor, §3.1's broker status loop, §3.3's
auto-replication -- but hand-picked failure scenarios only cover the
failures someone thought of.  This package *generates* adversarial
scenarios: typed faults (:mod:`~repro.chaos.faults`) placed on a seeded
timeline (:mod:`~repro.chaos.schedule`) and injected through the engine's
:meth:`~repro.sim.Simulator.add_injection` hook.  The chaos runner in
:mod:`repro.experiments.chaos` drives whole episodes and asserts the
survival properties.  :mod:`~repro.chaos.crashpoints` goes further for
the management plane: it crashes the controller at *every* WAL/dispatch
boundary and asserts reconvergence at each one.
"""

from .crashpoints import explore_crash_points, render_exploration
from .faults import (AgentLoss, BackendCrash, ChaosTargets, DiskSlowdown,
                     Fault, FAULT_KINDS, FlashCrowd, LanDelay, MgmtCrash,
                     PacketLoss, Partition, PrimaryCrash)
from .schedule import FaultSchedule, generate_schedule

__all__ = [
    "ChaosTargets", "Fault", "FAULT_KINDS",
    "BackendCrash", "PrimaryCrash", "PacketLoss", "LanDelay", "Partition",
    "DiskSlowdown", "AgentLoss", "FlashCrowd", "MgmtCrash",
    "FaultSchedule", "generate_schedule",
    "explore_crash_points", "render_exploration",
]
