"""Exhaustive crash-point exploration for the management plane.

FoundationDB-style systematic crash testing, made cheap by determinism:
because the simulation prefix up to any WAL-append/dispatch boundary is
byte-reproducible, boundary *k* names the same instant in every run.  The
explorer therefore

1. runs the episode once with no crash plan to enumerate the ``B``
   boundaries (and record their descriptors), then
2. re-runs it once per boundary with a
   :class:`~repro.mgmt.durability.CrashPlan` that kills the controller
   exactly there,

and asserts the survival properties each time: the episode reconverges
to an audit-clean state with zero invariant violations, no duplicate and
no lost placements (the WAL-replay consistency check).  The report is a
plain sorted dict, byte-identical across runs, worker counts, and
``PYTHONHASHSEED`` values -- which is what lets ``repro sweep`` fan
thousands of crash points across processes and merge the shards
deterministically.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..mgmt.durability import CrashPlan

__all__ = ["explore_crash_points", "render_exploration"]

#: an episode: takes an Optional[CrashPlan], returns a plain outcome
#: dict with at least "boundaries", "descriptors", "converged", "failure"
EpisodeFn = Callable[[Optional[CrashPlan]], dict[str, Any]]


def explore_crash_points(episode: EpisodeFn, *,
                         offset: int = 0,
                         limit: Optional[int] = None) -> dict[str, Any]:
    """Crash the controller at every boundary in ``episode``.

    ``offset``/``limit`` select a slice of the boundary index space
    (1-based, in enumeration order) so a sweep can shard the exploration
    across workers; the baseline enumeration pass runs in every shard
    (it is the only way to learn ``B``, and determinism makes it
    identical everywhere).
    """
    if offset < 0:
        raise ValueError("offset must be >= 0")
    if limit is not None and limit < 0:
        raise ValueError("limit must be >= 0")
    baseline = episode(None)
    total = baseline["boundaries"]
    descriptors = list(baseline["descriptors"])
    indices = list(range(1, total + 1))[offset:]
    if limit is not None:
        indices = indices[:limit]
    explored: list[dict[str, Any]] = []
    for boundary in indices:
        plan = CrashPlan(at_boundary=boundary)
        outcome = episode(plan)
        explored.append({
            "boundary": boundary,
            "descriptor": (descriptors[boundary - 1]
                           if boundary <= len(descriptors) else ""),
            "crashed": bool(plan.fired),
            "crashed_at": plan.fired_at,
            "converged": bool(outcome["converged"]),
            "failure": outcome.get("failure", ""),
            "resolutions": outcome.get("resolutions", {}),
            "invariant_violations": outcome.get(
                "invariant_violations", []),
        })
    failures = [entry["boundary"] for entry in explored
                if not entry["converged"]]
    return {
        "boundaries": total,
        "descriptors": descriptors,
        "baseline_converged": bool(baseline["converged"]),
        "baseline_failure": baseline.get("failure", ""),
        "explored": explored,
        "coverage": {"offset": offset,
                     "count": len(explored),
                     "first": indices[0] if indices else None,
                     "last": indices[-1] if indices else None},
        "failures": failures,
        "all_converged": (bool(baseline["converged"])
                          and not failures),
    }


def render_exploration(report: dict[str, Any],
                       verbose: bool = False) -> str:
    """A terminal rendering of an exploration report."""
    lines = []
    cov = report["coverage"]
    lines.append(f"crash-point exploration: {report['boundaries']} "
                 f"boundaries, {cov['count']} explored "
                 f"(offset={cov['offset']})")
    lines.append(f"baseline: "
                 f"{'ok' if report['baseline_converged'] else 'FAILED'}"
                 + (f" ({report['baseline_failure']})"
                    if report["baseline_failure"] else ""))
    for entry in report["explored"]:
        status = "ok" if entry["converged"] else "FAILED"
        if verbose or not entry["converged"]:
            lines.append(f"  [{entry['boundary']:4d}] "
                         f"{entry['descriptor']:<44s} {status}"
                         + (f"  ({entry['failure']})"
                            if entry["failure"] else ""))
    verdict = ("all crash points converged" if report["all_converged"]
               else f"FAILURES at boundaries {report['failures']}")
    lines.append(verdict)
    return "\n".join(lines)
