"""Fault schedules: *when* the typed faults strike.

A :class:`FaultSchedule` is an ordered set of faults installed onto a live
deployment through :meth:`repro.sim.Simulator.add_injection`, the engine's
fault-injection hook.  Schedules are either declared explicitly (tests
pinning an exact scenario) or generated from a seeded
:class:`~repro.sim.RngStream` (the chaos runner's episodes), so every run
is reproducible from its seed alone.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from ..sim import Injection, RngStream
from .faults import (AgentLoss, BackendCrash, ChaosTargets, DiskSlowdown,
                     Fault, FAULT_KINDS, FlashCrowd, LanDelay, MgmtCrash,
                     PacketLoss, Partition, PrimaryCrash)

__all__ = ["FaultSchedule", "generate_schedule"]


class FaultSchedule:
    """An immutable, time-ordered collection of faults."""

    def __init__(self, faults: Iterable[Fault]):
        self.faults: tuple[Fault, ...] = tuple(
            sorted(faults, key=lambda f: (f.at, f.kind)))
        partitions = sum(1 for f in self.faults if f.kind == Partition.kind)
        if partitions > 1:
            # the Lan models a single binary partition at a time
            raise ValueError("at most one partition fault per schedule")

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self):
        return iter(self.faults)

    def kinds(self) -> tuple[str, ...]:
        return tuple(sorted({f.kind for f in self.faults}))

    def describe(self) -> str:
        return "; ".join(f.describe() for f in self.faults)

    def install(self, targets: ChaosTargets) -> list[Injection]:
        """Register every fault on the target simulator; returns records."""
        sim = targets.sim
        tracer = targets.tracer
        injections = []

        def traced(fault: Fault, action: str, op) -> None:
            if tracer is not None:
                tracer.point("chaos", f"{fault.kind}/{action}",
                             label=fault.describe())
            op(targets)

        for fault in self.faults:
            delay = fault.at - sim.now
            if delay < 0:
                raise ValueError(f"fault {fault.describe()} is in the past "
                                 f"(now={sim.now:.3f})")
            revert = (None if fault.duration == 0 else
                      (lambda f=fault: traced(f, "revert", f.revert)))
            injections.append(sim.add_injection(
                delay,
                (lambda f=fault: traced(f, "apply", f.apply)),
                revert=revert,
                duration=fault.duration,
                label=fault.describe()))
        return injections


def _build_fault(cls: type[Fault], rng: RngStream,
                 nodes: Sequence[str], duration: float) -> Fault:
    """One randomized fault of class ``cls``, bounded so it strikes in the
    first half of the episode and reverts well before the drain."""
    at = duration * rng.uniform(0.15, 0.45)
    span = duration * rng.uniform(0.12, 0.25)
    if cls is BackendCrash:
        return BackendCrash(node=rng.choice(sorted(nodes)), at=at,
                            duration=span)
    if cls is PrimaryCrash:
        return PrimaryCrash(at=at)  # permanent: the backup takes over
    if cls is PacketLoss:
        return PacketLoss(rate=rng.uniform(0.05, 0.25),
                          retransmit_delay=0.02, at=at, duration=span)
    if cls is LanDelay:
        return LanDelay(extra=rng.uniform(0.002, 0.010), at=at,
                        duration=span)
    if cls is Partition:
        k = rng.randint(1, max(1, len(nodes) // 3))
        cut = tuple(sorted(rng.sample(sorted(nodes), k)))
        return Partition(nodes=cut, at=at, duration=span)
    if cls is DiskSlowdown:
        return DiskSlowdown(node=rng.choice(sorted(nodes)),
                            factor=rng.uniform(4.0, 12.0), at=at,
                            duration=span)
    if cls is AgentLoss:
        return AgentLoss(rate=rng.uniform(0.2, 0.5), at=at, duration=span)
    if cls is FlashCrowd:
        return FlashCrowd(multiplier=rng.uniform(2.0, 4.0), at=at,
                          duration=span)
    if cls is MgmtCrash:
        # the outage window is the seeded "delayed restart"
        return MgmtCrash(at=at, duration=max(span, 0.3))
    raise ValueError(f"unknown fault class {cls!r}")


def generate_schedule(rng: RngStream, nodes: Sequence[str],
                      duration: float,
                      forced: Optional[type[Fault]] = None,
                      extra_faults: int = 2) -> FaultSchedule:
    """Random schedule: one ``forced`` fault plus ``extra_faults`` others.

    At most one fault per kind, so a schedule exercises ``1 +
    extra_faults`` *distinct* fault classes; the runner forces a different
    class each episode, which is how a 20-episode run is guaranteed to
    cover all of :data:`~repro.chaos.faults.FAULT_KINDS`.
    """
    if duration <= 0:
        raise ValueError("duration must be positive")
    if not nodes:
        raise ValueError("need at least one backend node")
    faults: list[Fault] = []
    used: list[type[Fault]] = []
    if forced is not None:
        faults.append(_build_fault(forced, rng, nodes, duration))
        used.append(forced)
    candidates = [cls for cls in FAULT_KINDS if cls not in used]
    for cls in rng.sample(candidates, min(extra_faults, len(candidates))):
        faults.append(_build_fault(cls, rng, nodes, duration))
    return FaultSchedule(faults)
