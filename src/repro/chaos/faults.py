"""Typed fault classes: what can break, and how it breaks.

Each fault is a small frozen value object naming a *kind* of failure the
paper's system is supposed to survive -- backend crash (§3.1's broker
status loop + §3.3 re-replication), primary distributor failure (§2.3
primary/backup takeover), LAN degradation (loss / delay / partition),
disk slowdown, and management-agent loss in flight.  A fault knows how to
``apply`` itself to a live deployment and (when transient) how to
``revert``; the scheduling -- *when* -- lives in
:mod:`repro.chaos.schedule`, which drives these through
:meth:`repro.sim.Simulator.add_injection`.

Every mutation goes through hooks the target components expose for fault
injection (``Lan.set_loss``/``set_partition``, ``Disk.set_slowdown``,
``Broker.drop_filter``, ``BackendServer.crash``), never by monkeypatching.
"""

from __future__ import annotations

import dataclasses
from typing import ClassVar, Optional

from ..cluster import BackendServer
from ..core.failover import HaDistributorPair
from ..mgmt import Broker, Controller
from ..mgmt.durability import recover
from ..net import Lan
from ..sim import RngStream, Simulator

__all__ = ["ChaosTargets", "Fault", "BackendCrash", "PrimaryCrash",
           "PacketLoss", "LanDelay", "Partition", "DiskSlowdown",
           "AgentLoss", "FlashCrowd", "MgmtCrash", "FAULT_KINDS"]


@dataclasses.dataclass
class ChaosTargets:
    """The live deployment surface a fault schedule acts on."""

    sim: Simulator
    lan: Lan
    servers: dict[str, BackendServer]
    pair: Optional[HaDistributorPair] = None
    brokers: dict[str, Broker] = dataclasses.field(default_factory=dict)
    #: stream deciding which transfers pay retransmissions (PacketLoss)
    loss_rng: Optional[RngStream] = None
    #: stream deciding which dispatches are lost in flight (AgentLoss)
    agent_rng: Optional[RngStream] = None
    #: the closed-loop client rig (FlashCrowd bursts extra clients on it);
    #: typed loosely to keep the chaos layer import-free of the workload
    rig: Optional[object] = None
    #: repro.obs tracer; fault apply/revert become "chaos" point events
    #: (typed loosely for the same import-hygiene reason as ``rig``)
    tracer: Optional[object] = None
    #: the management controller (MgmtCrash kills and restarts it)
    controller: Optional[Controller] = None


@dataclasses.dataclass(frozen=True, kw_only=True)
class Fault:
    """One scheduled failure; subclasses define the mechanics."""

    kind: ClassVar[str] = "fault"
    #: simulated time the fault strikes
    at: float
    #: how long it lasts; 0 means permanent (no revert scheduled)
    duration: float = 0.0

    @property
    def ends_at(self) -> float:
        return self.at + self.duration

    def apply(self, targets: ChaosTargets) -> None:
        raise NotImplementedError

    def revert(self, targets: ChaosTargets) -> None:
        """Undo a transient fault; permanent faults never call this."""

    def describe(self) -> str:
        def fmt(v: object) -> str:
            return f"{v:.4g}" if isinstance(v, float) else repr(v)

        params = {f.name: getattr(self, f.name)
                  for f in dataclasses.fields(self)
                  if f.name not in ("at", "duration")}
        inner = ", ".join(f"{k}={fmt(v)}" for k, v in sorted(params.items()))
        span = (f"t={self.at:.2f}s" if self.duration == 0 else
                f"t={self.at:.2f}s+{self.duration:.2f}s")
        return f"{self.kind}({inner}) @ {span}" if inner else \
            f"{self.kind} @ {span}"


@dataclasses.dataclass(frozen=True, kw_only=True)
class BackendCrash(Fault):
    """A backend machine dies (and its broker daemon with it)."""

    kind: ClassVar[str] = "backend-crash"
    node: str

    def apply(self, targets: ChaosTargets) -> None:
        targets.servers[self.node].crash()

    def revert(self, targets: ChaosTargets) -> None:
        targets.servers[self.node].recover()


@dataclasses.dataclass(frozen=True, kw_only=True)
class PrimaryCrash(Fault):
    """The primary distributor dies; §2.3's backup must take over.

    Permanent by design: recovery is the backup's promotion, not the
    primary coming back.
    """

    kind: ClassVar[str] = "primary-crash"

    def apply(self, targets: ChaosTargets) -> None:
        if targets.pair is None:
            raise ValueError("PrimaryCrash needs an HaDistributorPair")
        targets.pair.primary.crash()


@dataclasses.dataclass(frozen=True, kw_only=True)
class PacketLoss(Fault):
    """LAN-wide loss: transfers pay TCP retransmission rounds."""

    kind: ClassVar[str] = "packet-loss"
    rate: float
    retransmit_delay: float = 0.05

    def apply(self, targets: ChaosTargets) -> None:
        if targets.loss_rng is None:
            raise ValueError("PacketLoss needs targets.loss_rng")
        targets.lan.set_loss(self.rate, targets.loss_rng,
                             retransmit_delay=self.retransmit_delay)

    def revert(self, targets: ChaosTargets) -> None:
        targets.lan.clear_loss()


@dataclasses.dataclass(frozen=True, kw_only=True)
class LanDelay(Fault):
    """Extra one-way latency on every transfer (congested switch)."""

    kind: ClassVar[str] = "lan-delay"
    extra: float

    def apply(self, targets: ChaosTargets) -> None:
        targets.lan.add_delay(self.extra)

    def revert(self, targets: ChaosTargets) -> None:
        targets.lan.remove_delay(self.extra)


@dataclasses.dataclass(frozen=True, kw_only=True)
class Partition(Fault):
    """The named nodes are cut off from the rest of the LAN."""

    kind: ClassVar[str] = "partition"
    nodes: tuple[str, ...]

    def apply(self, targets: ChaosTargets) -> None:
        targets.lan.set_partition(self.nodes)

    def revert(self, targets: ChaosTargets) -> None:
        targets.lan.heal_partition()


@dataclasses.dataclass(frozen=True, kw_only=True)
class DiskSlowdown(Fault):
    """One node's disk degrades (failing drive, background scrub)."""

    kind: ClassVar[str] = "disk-slowdown"
    node: str
    factor: float = 8.0

    def apply(self, targets: ChaosTargets) -> None:
        targets.servers[self.node].disk.set_slowdown(self.factor)

    def revert(self, targets: ChaosTargets) -> None:
        targets.servers[self.node].disk.clear_slowdown()


@dataclasses.dataclass(frozen=True, kw_only=True)
class AgentLoss(Fault):
    """Management dispatches are lost in flight with some probability.

    §3.1's mobile agents ride the same unreliable network as everything
    else; the controller's dispatch timeout is what's under test here.
    """

    kind: ClassVar[str] = "agent-loss"
    rate: float

    def apply(self, targets: ChaosTargets) -> None:
        if targets.agent_rng is None:
            raise ValueError("AgentLoss needs targets.agent_rng")
        rng, rate = targets.agent_rng, self.rate
        for name in sorted(targets.brokers):
            targets.brokers[name].drop_filter = \
                lambda dispatch: rng.random() < rate

    def revert(self, targets: ChaosTargets) -> None:
        for name in sorted(targets.brokers):
            targets.brokers[name].drop_filter = None


@dataclasses.dataclass(frozen=True, kw_only=True)
class FlashCrowd(Fault):
    """A sudden burst of demand: the closed-loop client population jumps
    by ``multiplier`` x for the fault's duration.

    This is the overload-control scenario: without admission control the
    front end accepts everything and queues grow without limit; with it,
    excess requests are shed with a clean 503 + Retry-After.
    """

    kind: ClassVar[str] = "flash-crowd"
    multiplier: float = 3.0

    def apply(self, targets: ChaosTargets) -> None:
        if targets.rig is None:
            raise ValueError("FlashCrowd needs targets.rig")
        steady = targets.rig.steady_clients
        extra = max(1, round(steady * (self.multiplier - 1.0)))
        targets.rig.start_burst(extra)

    def revert(self, targets: ChaosTargets) -> None:
        targets.rig.drain_burst()


@dataclasses.dataclass(frozen=True, kw_only=True)
class MgmtCrash(Fault):
    """The management controller process dies and later restarts.

    A transient fault by construction: ``duration`` is the outage
    window, after which the controller restarts and -- when durability
    is enabled -- replays its WAL and resolves interrupted intents via
    :func:`repro.mgmt.durability.recover`.  In-flight operations observe
    :class:`~repro.mgmt.durability.ControllerCrashed` and unwind; the
    cluster monitor skips its sweeps while the brain is down.
    """

    kind: ClassVar[str] = "mgmt-crash"
    #: dispatch timeout for recovery's verify/re-drive probes
    recovery_timeout: float = 1.0

    def apply(self, targets: ChaosTargets) -> None:
        if targets.controller is None:
            raise ValueError("MgmtCrash needs targets.controller")
        if self.duration <= 0:
            raise ValueError("MgmtCrash must be transient (duration > 0)")
        targets.controller.crash()

    def revert(self, targets: ChaosTargets) -> None:
        controller = targets.controller
        if controller is None:
            raise ValueError("MgmtCrash needs targets.controller")
        controller.restart()
        if controller.durability is not None:
            targets.sim.process(
                recover(controller, timeout=self.recovery_timeout),
                name="mgmt-recovery")


#: Every injectable fault class, in a fixed order (episode rotation uses
#: this to guarantee coverage of all kinds across a run).  MgmtCrash is
#: deliberately *not* in the rotation: appending it would shift the
#: ``forced`` kind of every existing golden chaos episode.  Schedules
#: opt in explicitly (``forced=MgmtCrash`` / ``extra_faults``).
FAULT_KINDS: tuple[type[Fault], ...] = (
    BackendCrash, PrimaryCrash, PacketLoss, LanDelay, Partition,
    DiskSlowdown, AgentLoss, FlashCrowd)
