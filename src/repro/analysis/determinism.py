"""Determinism linter: an AST pass over the simulator's source tree.

The reproduction's benchmark numbers (URL-table lookups, the Figure 2-4
throughput curves) must be bit-reproducible across runs and across
``PYTHONHASHSEED`` values.  Four hazard classes break that contract:

* **DET001 wall-clock reads** -- ``time.time()``, ``time.monotonic()``,
  ``datetime.now()`` and friends observe the host, not the simulation.
* **DET002 global random module** -- any use of :mod:`random`'s module-level
  generator (or ``os.urandom``/``uuid.uuid4``/``secrets``) outside the one
  sanctioned seeding point, ``repro/sim/rng.py``.  A seeded
  ``random.Random(...)`` instance is allowed anywhere.
* **DET003 unsorted set iteration feeding decisions** -- iterating a
  ``set``-typed expression (the ``UrlRecord.locations`` idiom, a ``set(...)``
  constructor, or a set-algebra expression) in a ``for`` loop or
  comprehension without an intervening ``sorted(...)``.  Replica-selection
  and scheduling decisions driven by such iteration vary with the hash
  seed.  (Plain ``dict`` iteration is insertion-ordered in Python and is
  deliberately *not* flagged.)
* **DET004 identity ordering keys** -- ``id()`` or ``hash()`` used inside a
  ``sorted``/``min``/``max`` key; both vary run to run.

Intentional exceptions carry an inline pragma on the offending line::

    elapsed = time.perf_counter() - start  # det: allow[wall-clock]

Tags: ``wall-clock`` (DET001), ``rng`` (DET002), ``set-order`` (DET003),
``identity-order`` (DET004), or ``*`` for all.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Iterable, Optional

from .violations import Violation

__all__ = ["lint_source", "lint_file", "lint_tree", "DEFAULT_ROOT"]

#: The package root the CLI and tests lint by default.
DEFAULT_ROOT = Path(__file__).resolve().parent.parent

#: Modules allowed to touch the global random module (the seeding point).
RNG_ALLOWED_SUFFIXES = ("sim/rng.py",)

#: time-module functions that read the host clock.
WALL_CLOCK_TIME_FNS = frozenset({
    "time", "time_ns", "monotonic", "monotonic_ns",
    "perf_counter", "perf_counter_ns", "clock_gettime", "clock_gettime_ns",
})

#: datetime-class constructors that read the host clock.
WALL_CLOCK_DATETIME_FNS = frozenset({"now", "utcnow", "today"})

#: random-module attributes that are *not* the global generator.
RANDOM_SAFE_ATTRS = frozenset({"Random"})

#: Set-typed attributes whose iteration order feeds routing/placement
#: decisions in this codebase.
KNOWN_SET_ATTRS = frozenset({"locations"})

#: Consumers that neutralize iteration-order hazards: ``sorted`` imposes an
#: order; the rest are order-insensitive reductions (over hashable uniques).
ORDER_SAFE_CONSUMERS = frozenset({
    "sorted", "set", "frozenset", "len", "any", "all", "min", "max",
})

_PRAGMA = re.compile(r"det:\s*allow\[([^\]]*)\]")

_RULE_TAGS = {
    "DET001": "wall-clock",
    "DET002": "rng",
    "DET003": "set-order",
    "DET004": "identity-order",
}


class _Linter(ast.NodeVisitor):
    """One file's worth of hazard detection."""

    def __init__(self, path: str, lines: list[str], rng_allowed: bool):
        self.path = path
        self.lines = lines
        self.rng_allowed = rng_allowed
        self.violations: list[Violation] = []
        # import tracking
        self._time_aliases: set[str] = set()       # import time [as t]
        self._time_fn_names: dict[str, str] = {}   # from time import X [as y]
        self._datetime_mod_aliases: set[str] = set()
        self._datetime_class_names: set[str] = set()
        self._random_aliases: set[str] = set()
        self._uuid_aliases: set[str] = set()
        self._secrets_aliases: set[str] = set()
        self._os_aliases: set[str] = set()
        # iteration expressions blessed by an enclosing safe consumer
        self._sanitized: set[int] = set()

    # -- reporting ---------------------------------------------------------
    def _flag(self, rule: str, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 0)
        if 1 <= line <= len(self.lines):
            match = _PRAGMA.search(self.lines[line - 1])
            if match is not None:
                tags = {t.strip() for t in match.group(1).split(",")}
                if "*" in tags or _RULE_TAGS[rule] in tags:
                    return
        self.violations.append(Violation(
            rule=rule, path=self.path, line=line, message=message,
            pass_name="determinism"))

    # -- imports -----------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            if alias.name == "time":
                self._time_aliases.add(bound)
            elif alias.name == "datetime":
                self._datetime_mod_aliases.add(bound)
            elif alias.name == "random":
                self._random_aliases.add(bound)
            elif alias.name == "uuid":
                self._uuid_aliases.add(bound)
            elif alias.name == "secrets":
                self._secrets_aliases.add(bound)
            elif alias.name == "os":
                self._os_aliases.add(bound)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "time":
            for alias in node.names:
                if alias.name in WALL_CLOCK_TIME_FNS:
                    self._time_fn_names[alias.asname or alias.name] = \
                        alias.name
        elif node.module == "datetime":
            for alias in node.names:
                if alias.name in ("datetime", "date"):
                    self._datetime_class_names.add(alias.asname or alias.name)
        elif node.module == "random" and not self.rng_allowed:
            for alias in node.names:
                if alias.name not in RANDOM_SAFE_ATTRS:
                    self._flag("DET002", node,
                               f"import of random.{alias.name}: the global "
                               "random module is reserved for sim/rng.py")
        elif node.module == "secrets" and not self.rng_allowed:
            self._flag("DET002", node,
                       "secrets draws OS entropy; use a seeded RngStream")
        self.generic_visit(node)

    # -- call-level rules --------------------------------------------------
    def _is_datetime_class(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Name):
            return node.id in self._datetime_class_names
        if isinstance(node, ast.Attribute) and \
                isinstance(node.value, ast.Name):
            return (node.value.id in self._datetime_mod_aliases and
                    node.attr in ("datetime", "date"))
        return False

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            value = func.value
            if isinstance(value, ast.Name):
                if value.id in self._time_aliases and \
                        func.attr in WALL_CLOCK_TIME_FNS:
                    self._flag("DET001", node,
                               f"wall-clock read time.{func.attr}(); "
                               "use Simulator.now for simulated time")
                elif value.id in self._os_aliases and func.attr == "urandom":
                    self._flag("DET002", node,
                               "os.urandom draws OS entropy; "
                               "use a seeded RngStream")
                elif value.id in self._uuid_aliases and \
                        func.attr in ("uuid1", "uuid4"):
                    self._flag("DET002", node,
                               f"uuid.{func.attr}() is nondeterministic")
            if func.attr in WALL_CLOCK_DATETIME_FNS and \
                    self._is_datetime_class(value):
                self._flag("DET001", node,
                           f"wall-clock read datetime {func.attr}(); "
                           "use Simulator.now for simulated time")
        elif isinstance(func, ast.Name):
            if func.id in self._time_fn_names:
                self._flag("DET001", node,
                           f"wall-clock read "
                           f"{self._time_fn_names[func.id]}(); "
                           "use Simulator.now for simulated time")
        # DET004: identity used as an ordering key
        if isinstance(func, ast.Name) and func.id in ("sorted", "min", "max"):
            for kw in node.keywords:
                if kw.arg == "key" and self._uses_identity(kw.value):
                    self._flag("DET004", node,
                               f"{func.id}() key uses id()/hash(); "
                               "identity varies across runs")
            # bless order-safe consumption of hazardous iterables
            self._bless_args(node)
        elif isinstance(func, ast.Name) and func.id in ORDER_SAFE_CONSUMERS:
            self._bless_args(node)
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        # DET002: any global-random attribute (call or reference)
        if isinstance(node.value, ast.Name) and not self.rng_allowed:
            if node.value.id in self._random_aliases and \
                    node.attr not in RANDOM_SAFE_ATTRS:
                self._flag("DET002", node,
                           f"random.{node.attr}: the global random module "
                           "is reserved for sim/rng.py; use RngStream")
            elif node.value.id in self._secrets_aliases:
                self._flag("DET002", node,
                           "secrets draws OS entropy; use a seeded RngStream")
        self.generic_visit(node)

    @staticmethod
    def _uses_identity(key_expr: ast.expr) -> bool:
        if isinstance(key_expr, ast.Name) and key_expr.id in ("id", "hash"):
            return True
        for sub in ast.walk(key_expr):
            if isinstance(sub, ast.Call) and \
                    isinstance(sub.func, ast.Name) and \
                    sub.func.id in ("id", "hash"):
                return True
        return False

    # -- DET003: unsorted set iteration ------------------------------------
    def _bless_args(self, call: ast.Call) -> None:
        """Mark iterables consumed by an order-safe callable as sanitized."""
        for arg in call.args:
            self._sanitized.add(id(arg))
            if isinstance(arg, (ast.GeneratorExp, ast.ListComp,
                                ast.SetComp)):
                for comp in arg.generators:
                    self._sanitized.add(id(comp.iter))

    def _is_set_expr(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Attribute) and node.attr in KNOWN_SET_ATTRS:
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                and node.func.id in ("set", "frozenset"):
            return True
        if isinstance(node, ast.BinOp) and \
                isinstance(node.op, (ast.BitOr, ast.BitAnd,
                                     ast.BitXor, ast.Sub)):
            return self._is_set_expr(node.left) or \
                self._is_set_expr(node.right)
        return False

    def _check_iter(self, iter_expr: ast.expr) -> None:
        if id(iter_expr) in self._sanitized:
            return
        if self._is_set_expr(iter_expr):
            self._flag("DET003", iter_expr,
                       "iteration over a set-typed expression without "
                       "sorted(); order varies with PYTHONHASHSEED")

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def _visit_comp(self, node) -> None:
        for comp in node.generators:
            self._check_iter(comp.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comp
    visit_SetComp = _visit_comp
    visit_DictComp = _visit_comp
    visit_GeneratorExp = _visit_comp


def lint_source(source: str, path: str = "<string>") -> list[Violation]:
    """Lint one module's source text; ``path`` anchors the findings."""
    tree = ast.parse(source, filename=path)
    normalized = path.replace("\\", "/")
    rng_allowed = any(normalized.endswith(sfx)
                      for sfx in RNG_ALLOWED_SUFFIXES)
    linter = _Linter(path, source.splitlines(), rng_allowed)
    linter.visit(tree)
    return linter.violations


def lint_file(path: Path | str) -> list[Violation]:
    path = Path(path)
    return lint_source(path.read_text(), str(path))


def lint_tree(root: Optional[Path | str] = None,
              exclude: Iterable[str] = ("__pycache__",)) -> list[Violation]:
    """Lint every ``*.py`` under ``root`` (default: the repro package)."""
    root = Path(root) if root is not None else DEFAULT_ROOT
    violations: list[Violation] = []
    for path in sorted(root.rglob("*.py")):
        if any(part in exclude for part in path.parts):
            continue
        violations.extend(lint_file(path))
    return violations
