"""Static analysis and runtime verification for the reproduction.

Three cooperating passes enforce the properties the paper demands but code
review alone cannot:

* :mod:`repro.analysis.determinism` -- an AST linter that flags wall-clock
  reads, global-random use outside ``sim/rng.py``, unsorted set iteration
  feeding scheduling/replica-selection decisions, and identity-based
  ordering keys (the hazards that break bit-reproducibility across
  ``PYTHONHASHSEED`` values);
* :mod:`repro.analysis.statemachine` -- statically extracts declared
  ``*_TRANSITIONS`` lifecycle tables (the §2.2 splice machine in
  ``core/mapping_table.py``, the pre-forked-leg machine in
  ``core/splicer.py``) and verifies reachability, absorbing terminals,
  exact agreement with the paper's teardown sequence, and that every
  ``.transition(...)`` call site requests a declared transition;
* :mod:`repro.analysis.invariants` -- a runtime verifier asserting URL-table
  / catalog / server-store coherence and connection-pool lease balance,
  wired into the simulation engine's debug hook;
* :mod:`repro.analysis.deep` -- the whole-program CFG-based analyzer:
  gate dominance for optional subsystems (GATE001-004), acquire/release
  pairing across exception paths (LEAK001-003), and stale-read-across-
  yield hazards (YLD001-002).

Run all four from the command line::

    python -m repro.analysis          # exits nonzero on any violation

or individually via ``--pass determinism|state-machine|invariants|deep``.
"""

from .deep import (analyze_file, analyze_source, analyze_tree,
                   apply_baseline, default_baseline_path, load_baseline,
                   render_jsonl, sort_violations)
from .determinism import lint_file, lint_source, lint_tree
from .invariants import (InvariantError, check_invariants,
                         install_invariants, smoke_check, verify_invariants)
from .statemachine import (PAPER_SPLICE_TABLE, PAPER_TEARDOWN, StateMachine,
                           check_callsites, check_machine,
                           check_state_machines, discover_machines)
from .violations import Violation, render_report

__all__ = [
    "Violation", "render_report",
    "lint_source", "lint_file", "lint_tree",
    "StateMachine", "PAPER_SPLICE_TABLE", "PAPER_TEARDOWN",
    "discover_machines", "check_machine", "check_callsites",
    "check_state_machines",
    "InvariantError", "check_invariants", "verify_invariants",
    "install_invariants", "smoke_check",
    "analyze_source", "analyze_file", "analyze_tree",
    "apply_baseline", "default_baseline_path", "load_baseline",
    "render_jsonl", "sort_violations",
]
