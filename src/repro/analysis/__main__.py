"""CLI: ``python -m repro.analysis`` -- run the correctness passes.

Exits 0 when every pass is clean, 1 on any violation, so the command can
gate CI and future PRs.  The determinism and state-machine passes are
purely static; the invariants pass builds a small live deployment with the
engine's debug hook enabled and drives real traffic through it.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .determinism import DEFAULT_ROOT, lint_tree
from .invariants import smoke_check
from .statemachine import check_state_machines
from .violations import Violation, render_report

PASSES = ("determinism", "state-machine", "invariants", "all")


def run_passes(which: str = "all", root: Path | None = None,
               smoke_duration: float = 1.0) -> list[Violation]:
    root = root or DEFAULT_ROOT
    violations: list[Violation] = []
    if which in ("determinism", "all"):
        violations.extend(lint_tree(root))
    if which in ("state-machine", "all"):
        violations.extend(check_state_machines(root))
    if which in ("invariants", "all"):
        violations.extend(smoke_check(duration=smoke_duration))
    return violations


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.analysis",
        description="Determinism linter, state-machine checker, and "
                    "runtime invariant verifier for the simulator")
    parser.add_argument("--pass", dest="which", choices=PASSES,
                        default="all",
                        help="which analysis pass to run (default: all)")
    parser.add_argument("--root", type=Path, default=None,
                        help="source root to analyse "
                             "(default: the installed repro package)")
    parser.add_argument("--smoke-duration", type=float, default=1.0,
                        help="simulated seconds for the invariants "
                             "smoke deployment")
    args = parser.parse_args(argv)
    if args.root is not None and not args.root.is_dir():
        parser.error(f"--root {args.root}: not a directory")

    violations = run_passes(args.which, root=args.root,
                            smoke_duration=args.smoke_duration)
    print(render_report(violations))
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
