"""CLI: ``python -m repro.analysis`` -- run the correctness passes.

Exits 0 when every pass is clean, 1 on any violation, so the command can
gate CI and future PRs.  The determinism and state-machine passes are
purely static; the invariants pass builds a small live deployment with the
engine's debug hook enabled and drives real traffic through it.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .deep import analyze_tree, apply_baseline, default_baseline_path, \
    load_baseline, render_jsonl
from .determinism import DEFAULT_ROOT, lint_tree
from .invariants import smoke_check
from .statemachine import check_state_machines
from .violations import Violation, render_report

PASSES = ("determinism", "state-machine", "invariants", "deep", "all")


def run_deep(root: Path | None = None,
             baseline: Path | None = None) -> list[Violation]:
    """The whole-program gate/leak/stale-state pass, baseline-filtered.

    Findings already present in the baseline file are not *new* and do
    not fail the build; everything else does.
    """
    root = root or DEFAULT_ROOT
    violations = analyze_tree(root)
    baseline_path = baseline or default_baseline_path(root)
    return apply_baseline(violations, load_baseline(baseline_path))


def run_passes(which: str = "all", root: Path | None = None,
               smoke_duration: float = 1.0,
               baseline: Path | None = None) -> list[Violation]:
    root = root or DEFAULT_ROOT
    violations: list[Violation] = []
    if which in ("determinism", "all"):
        violations.extend(lint_tree(root))
    if which in ("state-machine", "all"):
        violations.extend(check_state_machines(root))
    if which in ("invariants", "all"):
        violations.extend(smoke_check(duration=smoke_duration))
    if which in ("deep", "all"):
        violations.extend(run_deep(root, baseline=baseline))
    return violations


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.analysis",
        description="Determinism linter, state-machine checker, and "
                    "runtime invariant verifier for the simulator")
    parser.add_argument("--pass", dest="which", choices=PASSES,
                        default="all",
                        help="which analysis pass to run (default: all)")
    parser.add_argument("--root", type=Path, default=None,
                        help="source root to analyse "
                             "(default: the installed repro package)")
    parser.add_argument("--smoke-duration", type=float, default=1.0,
                        help="simulated seconds for the invariants "
                             "smoke deployment")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="baseline file of accepted deep findings "
                             "(default: deep-baseline.txt at the repo "
                             "root)")
    parser.add_argument("--format", dest="fmt",
                        choices=("text", "jsonl"), default="text",
                        help="report format (jsonl is byte-stable for "
                             "diffing and baselines)")
    args = parser.parse_args(argv)
    if args.root is not None and not args.root.is_dir():
        parser.error(f"--root {args.root}: not a directory")

    violations = run_passes(args.which, root=args.root,
                            smoke_duration=args.smoke_duration,
                            baseline=args.baseline)
    if args.fmt == "jsonl":
        out = render_jsonl(violations)
        if out:
            print(out)
    else:
        print(render_report(violations))
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
