"""State-machine checker: verify declared lifecycle tables statically.

The splice state machine in :mod:`repro.core.mapping_table` must match the
paper's §2.2 lifecycle exactly: entries are created in SYN_RECEIVED, reach
ESTABLISHED after the handshake, optionally BOUND once a pre-forked
connection is leased, and tear down FIN_RECEIVED -> HALF_CLOSED -> CLOSED,
with CLOSED absorbing.  The pre-forked backend legs in
:mod:`repro.core.splicer` have their own (string-keyed) lifecycle,
``_LEG_TRANSITIONS``.

This pass discovers every module-level ``*_TRANSITIONS`` table under the
source root and verifies, per machine:

* **SM001** every declared state appears as a table key;
* **SM002** every transition target is a declared state;
* **SM003** every state is reachable from the initial state;
* **SM004** terminal states are absorbing (no outgoing edges, or only a
  self-loop), and at least one terminal exists;
* **SM005** the splice table equals the paper's §2.2 table verbatim;
* **SM006** every ``.transition(...)`` call site in the tree requests a
  declared transition *target* (and is a literal enum member, not a
  dynamic expression -- **SM007**);
* **SM008** no module other than the declaring one assigns ``.state``
  directly (state changes must go through ``transition()``); string-state
  assignments in the declaring module must name a declared state.
"""

from __future__ import annotations

import ast
import dataclasses
from pathlib import Path
from typing import Optional

from .determinism import DEFAULT_ROOT
from .violations import Violation

__all__ = ["StateMachine", "PAPER_SPLICE_TABLE", "PAPER_TEARDOWN",
           "discover_machines", "check_machine", "check_callsites",
           "check_state_machines"]

#: §2.2's splice lifecycle, verbatim.  SYN_RECEIVED is entry creation;
#: every state may abort straight to CLOSED (RST / failure path); the
#: orderly teardown is FIN_RECEIVED -> HALF_CLOSED -> CLOSED.
PAPER_SPLICE_TABLE: dict[str, frozenset[str]] = {
    "SYN_RECEIVED": frozenset({"ESTABLISHED", "CLOSED"}),
    "ESTABLISHED": frozenset({"BOUND", "FIN_RECEIVED", "CLOSED"}),
    "BOUND": frozenset({"FIN_RECEIVED", "CLOSED"}),
    "FIN_RECEIVED": frozenset({"HALF_CLOSED", "CLOSED"}),
    "HALF_CLOSED": frozenset({"CLOSED"}),
    "CLOSED": frozenset(),
}

#: The §2.2 teardown sequence that must exist as a chain in the table.
PAPER_TEARDOWN = ("FIN_RECEIVED", "HALF_CLOSED", "CLOSED")


@dataclasses.dataclass
class StateMachine:
    """One lifecycle extracted from source."""

    name: str                          # the *_TRANSITIONS variable name
    path: str                          # module file declaring it
    line: int
    enum_name: Optional[str]           # e.g. "MappingState"; None for str keys
    states: list[str]                  # declaration order; [0] is initial
    table: dict[str, frozenset[str]]

    @property
    def initial(self) -> str:
        return self.states[0]

    @property
    def terminals(self) -> set[str]:
        return {s for s, targets in self.table.items()
                if not (targets - {s})}

    def reachable(self) -> set[str]:
        seen = {self.initial}
        frontier = [self.initial]
        while frontier:
            state = frontier.pop()
            for nxt in self.table.get(state, frozenset()):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return seen

    def declared_targets(self) -> set[str]:
        out: set[str] = set()
        for targets in self.table.values():
            out |= targets
        return out


# -- extraction -------------------------------------------------------------
def _state_name(node: ast.expr, enum_name: Optional[str]) -> Optional[str]:
    """``MappingState.X`` -> "X"; ``"X"`` -> "X"; else None."""
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
        if enum_name is None or node.value.id == enum_name:
            return node.attr
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _target_set(node: ast.expr, enum_name: Optional[str]) \
        -> Optional[frozenset[str]]:
    """Parse ``frozenset({...})``, ``frozenset()``, or a set literal."""
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) and \
            node.func.id in ("frozenset", "set"):
        if not node.args:
            return frozenset()
        node = node.args[0]
    if isinstance(node, (ast.Set, ast.List, ast.Tuple)):
        names = [_state_name(e, enum_name) for e in node.elts]
        if all(n is not None for n in names):
            return frozenset(names)  # type: ignore[arg-type]
    return None


def _enum_members(tree: ast.Module, enum_name: str) -> list[str]:
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == enum_name:
            members = []
            for stmt in node.body:
                if isinstance(stmt, ast.Assign):
                    for tgt in stmt.targets:
                        if isinstance(tgt, ast.Name) and \
                                not tgt.id.startswith("_"):
                            members.append(tgt.id)
            return members
    return []


def _extract_from_module(tree: ast.Module, path: str) -> list[StateMachine]:
    machines = []
    for node in tree.body:
        targets = node.targets if isinstance(node, ast.Assign) else \
            [node.target] if isinstance(node, ast.AnnAssign) else []
        value = getattr(node, "value", None)
        for tgt in targets:
            if not (isinstance(tgt, ast.Name) and
                    tgt.id.endswith("_TRANSITIONS")):
                continue
            if not isinstance(value, ast.Dict):
                continue
            # does this table use an enum (Attribute keys) or strings?
            enum_name = None
            for key in value.keys:
                if isinstance(key, ast.Attribute) and \
                        isinstance(key.value, ast.Name):
                    enum_name = key.value.id
                    break
            table: dict[str, frozenset[str]] = {}
            order: list[str] = []
            for key, val in zip(value.keys, value.values):
                state = _state_name(key, enum_name) if key else None
                tset = _target_set(val, enum_name)
                if state is None or tset is None:
                    continue
                table[state] = tset
                order.append(state)
            states = _enum_members(tree, enum_name) if enum_name else order
            if not states:
                states = order
            machines.append(StateMachine(
                name=tgt.id, path=path, line=node.lineno,
                enum_name=enum_name, states=states, table=table))
    return machines


def discover_machines(root: Optional[Path | str] = None) \
        -> list[StateMachine]:
    """Find every ``*_TRANSITIONS`` table under ``root``."""
    root = Path(root) if root is not None else DEFAULT_ROOT
    machines: list[StateMachine] = []
    for path in sorted(root.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        tree = ast.parse(path.read_text(), filename=str(path))
        machines.extend(_extract_from_module(tree, str(path)))
    return machines


# -- per-machine checks ------------------------------------------------------
def check_machine(machine: StateMachine,
                  expected_table: Optional[dict[str, frozenset[str]]] = None,
                  ) -> list[Violation]:
    """Structural checks SM001-SM005 on one machine."""
    out: list[Violation] = []

    def flag(rule: str, message: str) -> None:
        out.append(Violation(rule=rule, path=machine.path, line=machine.line,
                             message=f"{machine.name}: {message}",
                             pass_name="state-machine"))

    declared = set(machine.states)
    for state in machine.states:
        if state not in machine.table:
            flag("SM001", f"state {state} has no transition-table entry")
    for state, targets in machine.table.items():
        if state not in declared:
            flag("SM002", f"table key {state} is not a declared state")
        for target in targets:
            if target not in declared:
                flag("SM002",
                     f"transition {state} -> {target}: "
                     f"{target} is not a declared state")
    reachable = machine.reachable()
    for state in machine.states:
        if state not in reachable:
            flag("SM003", f"state {state} is unreachable from "
                          f"{machine.initial}")
    terminals = machine.terminals
    if not terminals:
        flag("SM004", "no terminal (absorbing) state: every entry must be "
                      "able to finish")
    if expected_table is not None:
        want_terminals = {s for s, t in expected_table.items()
                         if not (set(t) - {s})}
        if terminals and want_terminals and terminals != want_terminals:
            flag("SM004", f"terminal states {sorted(terminals)} differ from "
                          f"the paper's {sorted(want_terminals)}; terminals "
                          "must be absorbing and exact")
    if expected_table is not None:
        expected = {s: frozenset(t) for s, t in expected_table.items()}
        if machine.table != expected:
            for state in sorted(set(machine.table) | set(expected)):
                got = machine.table.get(state, frozenset())
                want = expected.get(state, frozenset())
                if got != want:
                    flag("SM005",
                         f"paper-table mismatch at {state}: declared "
                         f"{sorted(got)}, §2.2 requires {sorted(want)}")
        # the teardown chain must be present link by link
        for a, b in zip(PAPER_TEARDOWN, PAPER_TEARDOWN[1:]):
            if b not in machine.table.get(a, frozenset()):
                flag("SM005", f"missing §2.2 teardown edge {a} -> {b}")
    return out


# -- call-site checks --------------------------------------------------------
def check_callsites(machine: StateMachine,
                    root: Optional[Path | str] = None) -> list[Violation]:
    """SM006-SM008 over every module under ``root``.

    Applies to enum-keyed machines (the target of ``.transition(...)`` is a
    ``<Enum>.<MEMBER>`` literal) and, for string-keyed machines, to direct
    ``.state = "..."`` assignments in the declaring module.
    """
    root = Path(root) if root is not None else DEFAULT_ROOT
    out: list[Violation] = []
    legal_targets = machine.declared_targets()
    declaring = Path(machine.path).name

    for path in sorted(root.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        tree = ast.parse(path.read_text(), filename=str(path))
        in_declaring = path.name == declaring
        for node in ast.walk(tree):
            # .transition(entry, <target>) call sites
            if isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Attribute) and \
                    node.func.attr == "transition" and \
                    machine.enum_name is not None:
                if len(node.args) < 2:
                    continue
                target = node.args[-1]
                if isinstance(target, ast.Attribute) and \
                        isinstance(target.value, ast.Name) and \
                        target.value.id == machine.enum_name:
                    if target.attr not in legal_targets:
                        out.append(Violation(
                            rule="SM006", path=str(path), line=node.lineno,
                            message=f"transition to "
                                    f"{machine.enum_name}.{target.attr} is "
                                    f"not declared in {machine.name}",
                            pass_name="state-machine"))
                elif isinstance(target, ast.Attribute) and \
                        isinstance(target.value, ast.Name):
                    pass  # another enum's transition call; not this machine
                else:
                    out.append(Violation(
                        rule="SM007", path=str(path), line=node.lineno,
                        message="dynamic transition target cannot be "
                                "verified statically; use a literal "
                                "enum member",
                        pass_name="state-machine"))
            # direct .state = <value> assignments
            if isinstance(node, ast.Assign) and len(node.targets) == 1 and \
                    isinstance(node.targets[0], ast.Attribute) and \
                    node.targets[0].attr == "state":
                value = node.value
                if machine.enum_name is not None and \
                        isinstance(value, ast.Attribute) and \
                        isinstance(value.value, ast.Name) and \
                        value.value.id == machine.enum_name:
                    if not in_declaring:
                        out.append(Violation(
                            rule="SM008", path=str(path), line=node.lineno,
                            message=f"direct .state assignment of "
                                    f"{machine.enum_name}.{value.attr} "
                                    f"outside {declaring}; use "
                                    "MappingTable.transition()",
                            pass_name="state-machine"))
                    elif value.attr not in set(machine.states):
                        out.append(Violation(
                            rule="SM002", path=str(path), line=node.lineno,
                            message=f".state assigned undeclared "
                                    f"{value.attr}",
                            pass_name="state-machine"))
                elif machine.enum_name is None and in_declaring and \
                        isinstance(value, ast.Constant) and \
                        isinstance(value.value, str):
                    if value.value not in set(machine.states):
                        out.append(Violation(
                            rule="SM002", path=str(path), line=node.lineno,
                            message=f".state assigned undeclared "
                                    f"{value.value!r} (not in "
                                    f"{machine.name})",
                            pass_name="state-machine"))
    return out


def check_state_machines(root: Optional[Path | str] = None) \
        -> list[Violation]:
    """The full pass: discover, structurally check, then check call sites.

    The splice machine (keyed by ``MappingState``) is additionally held to
    the paper's §2.2 table, :data:`PAPER_SPLICE_TABLE`.
    """
    root = Path(root) if root is not None else DEFAULT_ROOT
    violations: list[Violation] = []
    machines = discover_machines(root)
    if not machines:
        violations.append(Violation(
            rule="SM000", path=str(root), line=0,
            message="no *_TRANSITIONS tables found: the splice state "
                    "machine declaration is missing",
            pass_name="state-machine"))
    for machine in machines:
        expected = PAPER_SPLICE_TABLE if machine.enum_name == "MappingState" \
            else None
        violations.extend(check_machine(machine, expected_table=expected))
        violations.extend(check_callsites(machine, root))
    return violations
