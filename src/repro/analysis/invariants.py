"""Runtime invariant verifier: URL-table / catalog / store coherence.

The distributor's routing directory (the URL table), the controller's
catalog, and the backends' physical stores describe the same reality from
three angles; replica-management work treats their coherence as a
first-class invariant, not a convention.  This pass checks, on live
objects:

* **INV001** every ``UrlRecord`` location names a known server;
* **INV002** every location actually holds the item's bytes (skipped in the
  shared-NFS configuration, where backends serve through the file server);
* **INV003** every item stored on a server is reachable through the URL
  table *and* routed to that server (no orphaned bytes);
* **INV004** no record has an empty location set (§1.2: every document is
  placed somewhere);
* **INV005** the table's entry count matches its record iteration;
* **INV006** every mapping-table entry in BOUND (or later, pre-delete)
  state holds a leased pre-forked connection;
* **INV007** connection-pool lease accounting balances: idle + busy =
  total, released <= acquired, total <= max_size, and the number of
  *leased* pooled connections (delivered to a holder, not yet released)
  equals the number of live mapping entries holding one.  ``busy_count``
  is deliberately not compared against the mapping table: a connection
  popped from the idle list rides a zero-delay event to its acquirer, so
  between two simulation events it can be busy-but-not-yet-leased;
* **INV008** every catalog item resolves through the URL table (when a
  catalog is supplied);
* **INV009** admission-control accounting balances (when the front end has
  overload control wired): ``inflight = admitted - released``, the live
  and peak inflight/queue figures never exceed the configured bounds, and
  ``submitted = admitted + shed + queued``;
* **INV010** every circuit breaker is in a declared state of the
  ``BREAKER_TRANSITIONS`` machine with probe accounting inside its bounds.

``install_invariants`` wires these checks into the simulation engine's
debug hook so they run periodically *during* a run and fail fast with
:class:`InvariantError` at the first incoherent state.
"""

from __future__ import annotations

from typing import Optional

from ..core.mapping_table import MappingState
from .violations import Violation, render_report

__all__ = ["InvariantError", "check_invariants", "verify_invariants",
           "install_invariants", "smoke_check"]


class InvariantError(AssertionError):
    """A runtime coherence invariant does not hold."""

    def __init__(self, violations: list[Violation], timeline: str = ""):
        report = render_report(violations)
        if timeline:
            report = f"{report}\n\n{timeline}"
        super().__init__(report)
        self.violations = violations
        #: flight-recorder dump (repro.obs) captured at the moment the
        #: invariant fired, when the deployment carried a tracer
        self.timeline = timeline


def _flag(out: list[Violation], rule: str, where: str, message: str) -> None:
    out.append(Violation(rule=rule, path=where, line=0, message=message,
                         pass_name="invariants"))


def check_invariants(url_table,
                     servers: Optional[dict] = None,
                     frontend=None,
                     nfs=None,
                     catalog=None) -> list[Violation]:
    """Run every applicable coherence check; returns the violations found.

    All arguments except ``url_table`` are optional so the verifier can be
    pointed at partial deployments (e.g. a bare table in a unit test).
    """
    out: list[Violation] = []

    # -- URL table <-> server stores (INV001-INV005) ----------------------
    count = 0
    routed: dict[str, set[str]] = {}
    for record in url_table.records():
        count += 1
        if not record.locations:
            _flag(out, "INV004", record.path, "record has no locations")
        for node in sorted(record.locations):
            routed.setdefault(node, set()).add(record.path)
            if servers is None:
                continue
            if node not in servers:
                _flag(out, "INV001", record.path,
                      f"location {node!r} is not a known server")
            elif nfs is None and not servers[node].holds(record.path):
                _flag(out, "INV002", record.path,
                      f"routed to {node} but {node} does not hold the bytes")
    if count != len(url_table):
        _flag(out, "INV005", "url-table",
              f"record iteration yields {count} entries but the table "
              f"reports {len(url_table)}")
    if servers is not None:
        for name in sorted(servers):
            server = servers[name]
            for path in sorted(server.store.paths()):
                if path not in routed.get(name, ()):  # orphaned bytes
                    _flag(out, "INV003", path,
                          f"stored on {name} but the URL table does not "
                          f"route it there")

    # -- catalog <-> URL table (INV008) ------------------------------------
    if catalog is not None:
        for item in catalog:
            if item.path not in url_table:
                _flag(out, "INV008", item.path,
                      "catalog item is not resolvable via the URL table")

    # -- mapping table and connection pools (INV006-INV007) ----------------
    if frontend is not None:
        mapping = getattr(frontend, "mapping", None)
        bound_entries = 0
        if mapping is not None:
            for entry in mapping.entries():
                if entry.state in (MappingState.BOUND,
                                   MappingState.FIN_RECEIVED,
                                   MappingState.HALF_CLOSED) and \
                        entry.pooled_conn is None and entry.backend:
                    _flag(out, "INV006", str(entry.client),
                          f"entry in {entry.state.value} bound to "
                          f"{entry.backend} without a pooled connection")
                if entry.pooled_conn is not None:
                    bound_entries += 1
        pools = getattr(frontend, "pools", None)
        if pools is not None:
            leased_total = 0
            for backend in sorted(pools.pools()):
                pool = pools.pools()[backend]
                where = f"pool:{backend}"
                if pool.idle_count + pool.busy_count != pool.total:
                    _flag(out, "INV007", where,
                          f"idle ({pool.idle_count}) + busy "
                          f"({pool.busy_count}) != total ({pool.total})")
                if pool.busy_count < 0:
                    _flag(out, "INV007", where,
                          f"negative busy count {pool.busy_count}")
                if pool.leased_count > pool.busy_count:
                    _flag(out, "INV007", where,
                          f"leased ({pool.leased_count}) exceeds busy "
                          f"({pool.busy_count})")
                if pool.released > pool.acquired:
                    _flag(out, "INV007", where,
                          f"released ({pool.released}) exceeds acquired "
                          f"({pool.acquired})")
                if pool.total > pool.max_size:
                    _flag(out, "INV007", where,
                          f"total ({pool.total}) exceeds max_size "
                          f"({pool.max_size})")
                leased_total += pool.leased_count
            if mapping is not None and leased_total != bound_entries:
                _flag(out, "INV007", "pools",
                      f"{leased_total} leased pooled connections but "
                      f"{bound_entries} mapping entries hold one")

    # -- overload control (INV009-INV010) ----------------------------------
    ctl = getattr(frontend, "overload", None) if frontend is not None \
        else None
    if ctl is not None:
        from ..core.overload import BREAKER_TRANSITIONS
        adm, cfg = ctl.admission, ctl.config
        where = "admission"
        if adm.inflight != adm.admitted - adm.released:
            _flag(out, "INV009", where,
                  f"inflight ({adm.inflight}) != admitted ({adm.admitted}) "
                  f"- released ({adm.released})")
        if not 0 <= adm.inflight <= cfg.max_inflight:
            _flag(out, "INV009", where,
                  f"inflight ({adm.inflight}) outside "
                  f"[0, {cfg.max_inflight}]")
        if adm.queued > cfg.max_queue:
            _flag(out, "INV009", where,
                  f"queued ({adm.queued}) exceeds max_queue "
                  f"({cfg.max_queue})")
        if adm.peak_inflight > cfg.max_inflight:
            _flag(out, "INV009", where,
                  f"peak inflight ({adm.peak_inflight}) exceeds "
                  f"max_inflight ({cfg.max_inflight})")
        if adm.peak_queue > cfg.max_queue:
            _flag(out, "INV009", where,
                  f"peak queue ({adm.peak_queue}) exceeds max_queue "
                  f"({cfg.max_queue})")
        if adm.submitted != adm.admitted + adm.shed + adm.queued:
            _flag(out, "INV009", where,
                  f"submitted ({adm.submitted}) != admitted "
                  f"({adm.admitted}) + shed ({adm.shed}) + queued "
                  f"({adm.queued})")
        for node, snap in sorted(ctl.breakers.snapshot().items()):
            breaker = ctl.breakers.breaker(node)
            where = f"breaker:{node}"
            if snap["state"] not in BREAKER_TRANSITIONS:
                _flag(out, "INV010", where,
                      f"undeclared breaker state {snap['state']!r}")
            if not 0 <= breaker.probes_in_flight <= \
                    cfg.breaker_probe_inflight:
                _flag(out, "INV010", where,
                      f"probes in flight ({breaker.probes_in_flight}) "
                      f"outside [0, {cfg.breaker_probe_inflight}]")
    return out


def verify_invariants(url_table, servers=None, frontend=None, nfs=None,
                      catalog=None) -> None:
    """Like :func:`check_invariants` but raises :class:`InvariantError`."""
    violations = check_invariants(url_table, servers=servers,
                                  frontend=frontend, nfs=nfs,
                                  catalog=catalog)
    if violations:
        raise InvariantError(violations)


def install_invariants(deployment, every: int = 200) -> None:
    """Register the coherence checks on a deployment's simulator.

    ``deployment`` is duck-typed (anything with ``sim``, ``url_table``,
    ``servers``, ``frontend``, optionally ``nfs``/``catalog`` -- i.e. a
    :class:`repro.experiments.testbed.Deployment`).  The checks then run
    every ``every`` simulation events and raise :class:`InvariantError`
    from :meth:`Simulator.run` at the first incoherent state.

    When the deployment carries a :class:`repro.obs.Tracer`, the raised
    error includes the flight recorder's timeline -- the last events that
    led up to the incoherent state.
    """
    def _check() -> None:
        try:
            verify_invariants(deployment.url_table,
                              servers=deployment.servers,
                              frontend=deployment.frontend,
                              nfs=getattr(deployment, "nfs", None),
                              catalog=getattr(deployment, "catalog", None))
        except InvariantError as err:
            tracer = getattr(deployment, "tracer", None)
            if tracer is not None and not err.timeline:
                raise InvariantError(err.violations,
                                     timeline=tracer.recorder.render()) \
                    from None
            raise

    deployment.sim.add_invariant(_check, every=every)


def smoke_check(duration: float = 1.0, warmup: float = 0.25,
                n_clients: int = 4, n_objects: int = 80,
                seed: int = 42) -> list[Violation]:
    """Build a small partition-ca deployment with the debug hook enabled,
    drive it, and return any coherence violations (empty when healthy).

    This is the CLI's "invariants" pass: a live end-to-end exercise of the
    URL-table / store / pool coherence contract.
    """
    from ..experiments.testbed import ExperimentConfig, build_deployment
    from ..workload import WORKLOAD_A

    config = ExperimentConfig(scheme="partition-ca", workload=WORKLOAD_A,
                              duration=duration, warmup=warmup,
                              n_objects=n_objects, seed=seed,
                              n_client_machines=4,
                              debug_invariants=True)
    deployment = build_deployment(config)
    try:
        deployment.run(n_clients)
    except InvariantError as exc:
        return list(exc.violations)
    return check_invariants(deployment.url_table,
                            servers=deployment.servers,
                            frontend=deployment.frontend,
                            nfs=deployment.nfs,
                            catalog=deployment.catalog)
