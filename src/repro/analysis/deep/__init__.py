"""Whole-program static analysis for the reproduction's contracts.

``repro check --deep`` runs three CFG-based passes over ``src/repro``:

* :mod:`gates` -- every use of an opt-in subsystem (tracer, overload
  control, loss injection, NFS, lifecycle hooks, fast path) is
  dominated by its gate check (GATE001-004).
* :mod:`leaks` -- acquire/release pairing for connection leases,
  mapping-table entries, and admission slots across exception and
  early-return paths (LEAK001-003).
* :mod:`staleness` -- shared-state handles that cross a yield and then
  mutate without revalidation; live-view iteration over a yield
  (YLD001-002).

All passes share :mod:`cfg` (per-function control-flow graphs with
exception edges, ``finally`` weaving, dominator/dataflow solving) and
:mod:`baseline` (pragmas, the checked-in baseline file, byte-stable
rendering).  See DESIGN.md section 12 for the model and the registration
recipe for new gated subsystems.
"""

from __future__ import annotations

from pathlib import Path

from ..violations import Violation
from .baseline import (apply_baseline, default_baseline_path, filter_pragmas,
                       load_baseline, render_jsonl, sort_violations)
from .cfg import build_cfg, conditions, dominators, solve
from .gates import FAST_PATH_ATTR, GATES, GateSpec, analyze_gates
from .leaks import RESOURCES, ResourceSpec, analyze_leaks
from .staleness import analyze_staleness

__all__ = [
    "analyze_source", "analyze_file", "analyze_tree",
    "analyze_gates", "analyze_leaks", "analyze_staleness",
    "GATES", "GateSpec", "FAST_PATH_ATTR", "RESOURCES", "ResourceSpec",
    "build_cfg", "conditions", "dominators", "solve",
    "apply_baseline", "default_baseline_path", "load_baseline",
    "render_jsonl", "sort_violations",
]


def analyze_source(source: str, path: str) -> list[Violation]:
    """All three deep passes over one module's source, pragma-filtered."""
    import ast

    tree = ast.parse(source, filename=path)
    violations = (analyze_gates(tree, path)
                  + analyze_leaks(tree, path)
                  + analyze_staleness(tree, path))
    return sort_violations(filter_pragmas(violations, source))


def analyze_file(file_path: Path, rel_path: str) -> list[Violation]:
    return analyze_source(file_path.read_text(), rel_path)


def analyze_tree(root: Path) -> list[Violation]:
    """Deep-analyze every ``.py`` under ``root`` (sorted traversal).

    Paths in findings are repo-relative POSIX strings for the canonical
    ``src/repro`` layout, so reports are stable across machines.
    """
    root = root.resolve()
    if root.name == "repro" and root.parent.name == "src":
        base = root.parent.parent
    else:
        base = root
    violations: list[Violation] = []
    for path in sorted(root.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        rel = path.relative_to(base).as_posix()
        violations.extend(analyze_file(path, rel))
    return sort_violations(violations)
