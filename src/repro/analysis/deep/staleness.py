"""Stale-state / yield-point hazard detection (YLD001-002).

A ``yield`` in process code is an interleaving point: any other process
may run, and shared simulator/cluster state read *before* the yield may
no longer describe the world *after* it.  This is the discrete-event
analogue of a data race, and it cannot be caught by locking because
there are no locks -- only the discipline of revalidating before
mutating.  (PR 2's splice bug was exactly this: an entry looked up
before a wait was aborted after it, double-freeing the slot.)

Rules
-----
YLD001   a handle read from a shared table (``lookup``/``create`` on a
         mapping/URL table) crosses a yield and is then used to mutate
         shared state -- passed to a removal-type call or, for borrowed
         handles, written through -- without revalidation.
YLD002   iterating a *live* view of a shared container (``records()``,
         ``.values()``, a registry dict) with a yield inside the loop
         body; mutation during the wait corrupts the iterator.
         Snapshot first (``list(...)``/``sorted(...)``).

Owned vs borrowed: a handle returned by ``create`` is owned by this
process -- writing its fields is fine, but removal calls still need the
entry to be live.  A handle returned by ``lookup`` is borrowed -- both
field writes and removal calls are flagged when stale.  Revalidation is
a membership test that mentions the handle (``entry.client in
self.mapping``) or a fresh read from the table.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Optional

from ..violations import Violation
from .cfg import Edge, Node, build_cfg, conditions, solve, walk_scoped

__all__ = [
    "SHARED_TABLE_HINTS", "LOOKUP_METHODS", "CREATE_METHODS",
    "REMOVAL_METHODS", "LIVE_VIEW_METHODS", "SNAPSHOT_WRAPPERS",
    "LIVE_CONTAINER_ATTRS", "analyze_staleness",
]

#: receiver text must contain one of these to count as a shared table
SHARED_TABLE_HINTS = ("mapping", "url_table", "table")
LOOKUP_METHODS = ("lookup", "get")
CREATE_METHODS = ("create",)
#: calls that remove/invalidate shared state keyed by a handle
REMOVAL_METHODS = ("abort", "delete", "remove", "remove_location",
                   "invalidate", "pop")
#: zero-copy views over live containers
LIVE_VIEW_METHODS = ("records", "values", "keys", "items", "entries")
#: wrapping the iterable in one of these snapshots it
SNAPSHOT_WRAPPERS = ("list", "sorted", "tuple", "set", "frozenset")
#: bare attributes that are live shared registries (extend as new
#: subsystems appear); plain data attributes are exempt
LIVE_CONTAINER_ATTRS = ("brokers", "servers", "_pending", "_leased")


@dataclasses.dataclass(frozen=True)
class _Handle:
    var: str
    recv: str
    owned: bool
    stale: bool
    line: int  # where the handle was read


_State = frozenset


def _mentions(tree: ast.AST, name: str) -> bool:
    return any(isinstance(sub, ast.Name) and sub.id == name
               for sub in walk_scoped(tree))


def _shared_recv(call: ast.Call) -> Optional[str]:
    if not isinstance(call.func, ast.Attribute):
        return None
    recv = ast.unparse(call.func.value)
    if any(hint in recv for hint in SHARED_TABLE_HINTS):
        return recv
    return None


def _handle_source(stmt: ast.AST) -> Optional[tuple[str, str, bool, int]]:
    """(var, receiver, owned, line) when ``stmt`` binds a table handle."""
    if not (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)):
        return None
    for sub in walk_scoped(stmt.value):
        if not isinstance(sub, ast.Call):
            continue
        recv = _shared_recv(sub)
        if recv is None:
            continue
        method = sub.func.attr  # type: ignore[union-attr]
        if method in CREATE_METHODS:
            return (stmt.targets[0].id, recv, True, stmt.lineno)
        if method in LOOKUP_METHODS:
            return (stmt.targets[0].id, recv, False, stmt.lineno)
    return None


def _has_yield(tree: ast.AST) -> bool:
    return any(isinstance(sub, (ast.Yield, ast.YieldFrom))
               for sub in walk_scoped(tree))


class _Pass:
    def __init__(self, path: str):
        self.path = path
        self.flagged: set[tuple[int, str]] = set()
        self.violations: set[Violation] = set()

    def _flag(self, line: int, var: str, message: str) -> None:
        if (line, var) in self.flagged:
            return
        self.flagged.add((line, var))
        self.violations.add(Violation(
            rule="YLD001", path=self.path, line=line, message=message,
            pass_name="deep"))

    # -- transfer ----------------------------------------------------------
    def transfer(self, node: Node, state: _State) -> _State:
        roots = node.scan_roots()
        if not roots:
            return state
        handles = set(state)
        for root in roots:
            if _has_yield(root):
                handles = {dataclasses.replace(h, stale=True)
                           for h in handles}
            self._check(root, handles, node)
            source = _handle_source(root)
            if source is not None:
                var, recv, owned, line = source
                handles = {h for h in handles if h.var != var}
                handles.add(_Handle(var=var, recv=recv, owned=owned,
                                    stale=False, line=line))
            elif isinstance(root, ast.Assign):
                for t in root.targets:
                    for name in ([t] if isinstance(t, ast.Name)
                                 else list(ast.walk(t))):
                        if isinstance(name, ast.Name):
                            handles = {h for h in handles
                                       if h.var != name.id}
        if node.kind == "loop" and isinstance(node.stmt,
                                              (ast.For, ast.AsyncFor)):
            for sub in ast.walk(node.stmt.target):
                if isinstance(sub, ast.Name):
                    handles = {h for h in handles if h.var != sub.id}
        return frozenset(handles)

    def _check(self, root: ast.AST, handles: set[_Handle],
               node: Node) -> None:
        stale = {h for h in handles if h.stale}
        if not stale:
            return
        for sub in walk_scoped(root):
            if isinstance(sub, ast.Call) and \
                    isinstance(sub.func, ast.Attribute) and \
                    sub.func.attr in REMOVAL_METHODS:
                recv = ast.unparse(sub.func.value)
                args = list(sub.args) + [kw.value for kw in sub.keywords]
                for h in stale:
                    if h.recv == recv and \
                            any(_mentions(a, h.var) for a in args):
                        self._flag(
                            sub.lineno, h.var,
                            f"'{recv}.{sub.func.attr}(...)' keyed by "
                            f"'{h.var}' (read at line {h.line}) after a "
                            f"yield; another process may have removed "
                            f"it -- revalidate membership first")
            if isinstance(sub, (ast.Assign, ast.AugAssign)):
                targets = sub.targets if isinstance(sub, ast.Assign) \
                    else [sub.target]
                for t in targets:
                    base = t
                    while isinstance(base, (ast.Attribute, ast.Subscript)):
                        base = base.value
                    if not isinstance(base, ast.Name):
                        continue
                    for h in stale:
                        if h.owned or h.var != base.id or t is base:
                            continue
                        self._flag(
                            sub.lineno, h.var,
                            f"write through '{h.var}' (borrowed from "
                            f"{h.recv} at line {h.line}) after a yield "
                            f"without revalidation; the record may "
                            f"have been removed or replaced")

    # -- edges -------------------------------------------------------------
    @staticmethod
    def edge_transfer(edge: Edge, state: _State) -> Optional[_State]:
        if edge.test is None or not state:
            return state
        handles = set(state)
        for expr, _pol in conditions(edge.test, edge.polarity or False):
            if isinstance(expr, ast.Compare) and len(expr.ops) == 1 and \
                    isinstance(expr.ops[0], (ast.In, ast.NotIn)):
                recv = ast.unparse(expr.comparators[0])
                handles = {
                    dataclasses.replace(h, stale=False)
                    if h.recv == recv and _mentions(expr.left, h.var)
                    else h
                    for h in handles}
        return frozenset(handles)


def _live_iter_findings(func: ast.FunctionDef | ast.AsyncFunctionDef,
                        path: str) -> list[Violation]:
    out = []
    for sub in walk_scoped(func):
        if not isinstance(sub, (ast.For, ast.AsyncFor)):
            continue
        if not _has_yield(ast.Module(body=sub.body, type_ignores=[])):
            continue
        it = sub.iter
        if isinstance(it, ast.Call) and isinstance(it.func, ast.Name) \
                and it.func.id in SNAPSHOT_WRAPPERS:
            continue
        live: Optional[str] = None
        if isinstance(it, ast.Call) and \
                isinstance(it.func, ast.Attribute) and \
                it.func.attr in LIVE_VIEW_METHODS and not it.args:
            live = ast.unparse(it)
        elif isinstance(it, ast.Attribute) and \
                it.attr in LIVE_CONTAINER_ATTRS:
            live = ast.unparse(it)
        if live is None:
            continue
        out.append(Violation(
            rule="YLD002", path=path, line=sub.lineno,
            message=(f"iterating live view '{live}' with a yield in "
                     f"the loop body; concurrent mutation corrupts "
                     f"the iterator -- snapshot with list(...)/"
                     f"sorted(...) first"),
            pass_name="deep"))
    return out


def analyze_staleness(tree: ast.Module, path: str) -> list[Violation]:
    """Run the yield-hazard pass over one module."""
    out: list[Violation] = []
    for func in ast.walk(tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if not _has_yield(func) and not any(
                isinstance(s, (ast.Yield, ast.YieldFrom))
                for s in ast.walk(func)):
            continue  # not process code: no interleaving points
        run = _Pass(path)
        cfg = build_cfg(func)
        solve(cfg, frozenset(), transfer=run.transfer,
              edge_transfer=run.edge_transfer,
              meet=lambda a, b: a | b)
        out.extend(run.violations)
        out.extend(_live_iter_findings(func, path))
    return sorted(set(out), key=lambda v: (v.line, v.rule, v.message))
