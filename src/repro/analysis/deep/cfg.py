"""Per-function control-flow graphs for the deep analyzer.

Every deep pass (gate dominance, resource pairing, yield staleness) runs
on the same graph: one node per simple statement or branch test, edges
labelled with the branch condition and polarity that must hold to take
them, and *exception edges* from every raise-capable statement to the
innermost enclosing handler (or the function's exceptional exit).

``try/finally`` is modelled by weaving three copies of the ``finally``
body into the graph -- one per continuation (normal fall-through,
exception re-raise, return) -- so a release that lives in a ``finally``
is correctly seen on the exceptional and early-return paths.  Returns
inside a ``try`` are routed through the return copy; exceptions through
the exceptional copy, which then re-raises to the next enclosing
handler.

Dominance and dataflow
----------------------
:func:`solve` is a forward worklist solver parameterized by the pass's
transfer/meet functions.  With meet = set intersection, the fact set at a
node is exactly the set of edge labels that *dominate* it -- i.e. a gate
use is proven guarded iff the guard's true-edge fact survives every path
from entry (:func:`dominators` exposes the plain dominator sets for
passes and tests that want them directly).  With meet = union the solver
computes may-analyses (a leaked lease on *some* path).

Exception edges propagate the state holding *before* the raising
statement: an acquire that raises does not hold its resource, and any
later statement that raises leaks whatever was held on entry to it.
"""

from __future__ import annotations

import ast
import dataclasses
from collections import deque
from typing import Any, Callable, Iterator, Optional

__all__ = [
    "Edge", "Node", "Cfg", "Ctx", "build_cfg", "conditions", "solve",
    "dominators", "walk_scoped", "expr_raises", "CATCH_ALL_HANDLERS",
]

#: exception types treated as catch-alls (``Interrupt`` subclasses
#: ``Exception`` in this codebase, so ``except Exception`` swallows
#: every fault the simulator injects).
CATCH_ALL_HANDLERS = frozenset({"BaseException", "Exception"})

_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef,
                ast.Lambda)


def walk_scoped(tree: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` that does not descend into nested function/class
    scopes (their bodies execute later, under different facts).  The
    scope node itself *is* yielded, so passes can see e.g. a lambda
    capturing a lease, without treating its body as current-scope
    code."""
    todo = deque([tree])
    while todo:
        node = todo.popleft()
        yield node
        if isinstance(node, _SCOPE_NODES) and node is not tree:
            continue
        for child in ast.iter_child_nodes(node):
            todo.append(child)


def expr_raises(tree: ast.AST) -> bool:
    """Conservatively, can evaluating ``tree`` raise?  Calls, yields (a
    waiting process can be interrupted), and explicit raises can; plain
    name/constant shuffling cannot."""
    for sub in walk_scoped(tree):
        if isinstance(sub, (ast.Call, ast.Yield, ast.YieldFrom,
                            ast.Await, ast.Raise)):
            return True
    return False


@dataclasses.dataclass(frozen=True)
class Edge:
    """One CFG edge.  ``test``/``polarity`` label conditional edges with
    the branch condition that must evaluate to ``polarity`` to take the
    edge.  ``exc=True`` marks an exception edge (propagates the state
    holding *before* the source node)."""

    src: int
    dst: int
    test: Optional[ast.expr] = None
    polarity: Optional[bool] = None
    exc: bool = False


@dataclasses.dataclass
class Node:
    """One CFG node: a simple statement, a branch test, or a structural
    marker (entry/exit/merge)."""

    index: int
    kind: str  # entry|exit|exc-exit|stmt|test|loop|merge
    stmt: Optional[ast.AST] = None
    expr: Optional[ast.expr] = None  # the expression evaluated here

    @property
    def line(self) -> int:
        anchor = self.expr if self.expr is not None else self.stmt
        return getattr(anchor, "lineno", 0)

    def scan_roots(self) -> tuple[ast.AST, ...]:
        """The AST(s) a pass should inspect for uses at this node."""
        if self.kind in ("test", "loop"):
            return (self.expr,) if self.expr is not None else ()
        if self.kind == "stmt" and self.stmt is not None:
            if isinstance(self.stmt, (ast.With, ast.AsyncWith)):
                # the body has its own nodes (and facts); only the
                # context managers are evaluated at the with-head
                return tuple(item.context_expr for item in self.stmt.items)
            return (self.stmt,)
        return ()


@dataclasses.dataclass
class Cfg:
    nodes: list[Node]
    succs: list[list[Edge]]
    entry: int
    exit: int
    exc_exit: int
    func: ast.AST

    def preds(self) -> list[list[Edge]]:
        preds: list[list[Edge]] = [[] for _ in self.nodes]
        for edges in self.succs:
            for e in edges:
                preds[e.dst].append(e)
        return preds


@dataclasses.dataclass(frozen=True)
class Ctx:
    """Builder context: where exceptions, returns, break/continue go."""

    exc_targets: tuple[int, ...]
    ret: int
    brk: Optional[int] = None
    cont: Optional[int] = None


# A frontier is a list of dangling out-edges waiting for their target:
# (source node, branch test, polarity).
_Frontier = list[tuple[int, Optional[ast.expr], Optional[bool]]]


class _Builder:
    def __init__(self) -> None:
        self.nodes: list[Node] = []
        self.succs: list[list[Edge]] = []

    def node(self, kind: str, stmt: Optional[ast.AST] = None,
             expr: Optional[ast.expr] = None) -> int:
        idx = len(self.nodes)
        self.nodes.append(Node(index=idx, kind=kind, stmt=stmt, expr=expr))
        self.succs.append([])
        return idx

    def edge(self, src: int, dst: int, test: Optional[ast.expr] = None,
             polarity: Optional[bool] = None, exc: bool = False) -> None:
        self.succs[src].append(Edge(src=src, dst=dst, test=test,
                                    polarity=polarity, exc=exc))

    def connect(self, frontier: _Frontier, dst: int) -> None:
        for src, test, pol in frontier:
            self.edge(src, dst, test, pol)

    def exc_edges(self, src: int, ctx: Ctx) -> None:
        for target in ctx.exc_targets:
            self.edge(src, target, exc=True)

    # -- statement dispatch -------------------------------------------------
    def seq(self, stmts: list[ast.stmt], frontier: _Frontier,
            ctx: Ctx) -> _Frontier:
        for stmt in stmts:
            frontier = self.stmt(stmt, frontier, ctx)
        return frontier

    def stmt(self, s: ast.stmt, frontier: _Frontier, ctx: Ctx) -> _Frontier:
        if isinstance(s, ast.If):
            return self._if(s, frontier, ctx)
        if isinstance(s, ast.While):
            return self._while(s, frontier, ctx)
        if isinstance(s, (ast.For, ast.AsyncFor)):
            return self._for(s, frontier, ctx)
        if isinstance(s, ast.Try):
            return self._try(s, frontier, ctx)
        if isinstance(s, (ast.With, ast.AsyncWith)):
            return self._with(s, frontier, ctx)
        if isinstance(s, ast.Return):
            n = self.node("stmt", s)
            self.connect(frontier, n)
            if s.value is not None and expr_raises(s.value):
                self.exc_edges(n, ctx)
            self.edge(n, ctx.ret)
            return []
        if isinstance(s, ast.Raise):
            n = self.node("stmt", s)
            self.connect(frontier, n)
            self.exc_edges(n, ctx)
            return []
        if isinstance(s, ast.Break):
            n = self.node("stmt", s)
            self.connect(frontier, n)
            if ctx.brk is not None:
                self.edge(n, ctx.brk)
            return []
        if isinstance(s, ast.Continue):
            n = self.node("stmt", s)
            self.connect(frontier, n)
            if ctx.cont is not None:
                self.edge(n, ctx.cont)
            return []
        # simple statement (assignments, expression statements, nested
        # defs, asserts, ...)
        n = self.node("stmt", s)
        self.connect(frontier, n)
        if expr_raises(s) or isinstance(s, ast.Assert):
            self.exc_edges(n, ctx)
        return [(n, None, None)]

    # -- structured statements ----------------------------------------------
    def _if(self, s: ast.If, frontier: _Frontier, ctx: Ctx) -> _Frontier:
        t = self.node("test", s, expr=s.test)
        self.connect(frontier, t)
        if expr_raises(s.test):
            self.exc_edges(t, ctx)
        body_f = self.seq(s.body, [(t, s.test, True)], ctx)
        if s.orelse:
            else_f = self.seq(s.orelse, [(t, s.test, False)], ctx)
        else:
            else_f = [(t, s.test, False)]
        return body_f + else_f

    def _while(self, s: ast.While, frontier: _Frontier,
               ctx: Ctx) -> _Frontier:
        head = self.node("test", s, expr=s.test)
        self.connect(frontier, head)
        if expr_raises(s.test):
            self.exc_edges(head, ctx)
        after = self.node("merge", s)
        const_true = isinstance(s.test, ast.Constant) and bool(s.test.value)
        if not const_true:
            self.edge(head, after, s.test, False)
        inner = dataclasses.replace(ctx, brk=after, cont=head)
        body_f = self.seq(s.body, [(head, s.test, True)], inner)
        self.connect(body_f, head)
        frontier = [(after, None, None)]
        if s.orelse:
            frontier = self.seq(s.orelse, frontier, ctx)
        return frontier

    def _for(self, s: ast.For | ast.AsyncFor, frontier: _Frontier,
             ctx: Ctx) -> _Frontier:
        head = self.node("loop", s, expr=s.iter)
        self.connect(frontier, head)
        self.exc_edges(head, ctx)  # iterator protocol can raise
        after = self.node("merge", s)
        self.edge(head, after)
        inner = dataclasses.replace(ctx, brk=after, cont=head)
        body_f = self.seq(s.body, [(head, None, None)], inner)
        self.connect(body_f, head)
        frontier = [(after, None, None)]
        if s.orelse:
            frontier = self.seq(s.orelse, frontier, ctx)
        return frontier

    def _with(self, s: ast.With | ast.AsyncWith, frontier: _Frontier,
              ctx: Ctx) -> _Frontier:
        n = self.node("stmt", s)
        self.connect(frontier, n)
        self.exc_edges(n, ctx)
        return self.seq(s.body, [(n, None, None)], ctx)

    @staticmethod
    def _is_catch_all(handler: ast.ExceptHandler) -> bool:
        if handler.type is None:
            return True
        types = (handler.type.elts
                 if isinstance(handler.type, ast.Tuple)
                 else [handler.type])
        for t in types:
            name = t.id if isinstance(t, ast.Name) else getattr(t, "attr", "")
            if name in CATCH_ALL_HANDLERS:
                return True
        return False

    def _try(self, s: ast.Try, frontier: _Frontier, ctx: Ctx) -> _Frontier:
        has_finally = bool(s.finalbody)
        # entry merge nodes for each finally continuation, created up
        # front so the try body can target them
        fin_exc = self.node("merge", s) if has_finally else None
        fin_ret = self.node("merge", s) if has_finally else None
        fin_norm = self.node("merge", s) if has_finally else None

        handler_entries = [self.node("merge", h) for h in s.handlers]
        caught_all = any(self._is_catch_all(h) for h in s.handlers)

        escape: tuple[int, ...]
        if has_finally:
            escape = (fin_exc,)  # type: ignore[assignment]
        else:
            escape = ctx.exc_targets
        body_exc: tuple[int, ...] = tuple(handler_entries)
        if not caught_all:
            body_exc += escape
        if not body_exc:
            body_exc = escape
        body_ctx = dataclasses.replace(
            ctx, exc_targets=body_exc,
            ret=fin_ret if has_finally else ctx.ret)

        body_f = self.seq(s.body, frontier, body_ctx)
        if s.orelse:
            body_f = self.seq(s.orelse, body_f, body_ctx)

        handler_ctx = dataclasses.replace(
            ctx, exc_targets=escape,
            ret=fin_ret if has_finally else ctx.ret)
        after_f: _Frontier = list(body_f)
        for h, h_entry in zip(s.handlers, handler_entries):
            after_f += self.seq(h.body, [(h_entry, None, None)], handler_ctx)

        if not has_finally:
            return after_f

        # normal continuation: after-try code follows the finally body
        self.connect(after_f, fin_norm)  # type: ignore[arg-type]
        norm_f = self.seq(s.finalbody, [(fin_norm, None, None)], ctx)
        # exceptional continuation: run finally, then re-raise outward
        exc_f = self.seq(s.finalbody, [(fin_exc, None, None)], ctx)
        for target in ctx.exc_targets:
            self.connect(exc_f, target)
        # return continuation: run finally, then keep returning
        ret_f = self.seq(s.finalbody, [(fin_ret, None, None)], ctx)
        self.connect(ret_f, ctx.ret)
        return norm_f


def build_cfg(func: ast.FunctionDef | ast.AsyncFunctionDef) -> Cfg:
    """Build the CFG of one function body."""
    b = _Builder()
    entry = b.node("entry", func)
    exit_n = b.node("exit", func)
    exc_n = b.node("exc-exit", func)
    ctx = Ctx(exc_targets=(exc_n,), ret=exit_n)
    frontier = b.seq(func.body, [(entry, None, None)], ctx)
    b.connect(frontier, exit_n)
    return Cfg(nodes=b.nodes, succs=b.succs, entry=entry, exit=exit_n,
               exc_exit=exc_n, func=func)


def conditions(test: ast.expr,
               polarity: bool) -> list[tuple[ast.expr, bool]]:
    """Decompose a branch condition into the atomic conditions known to
    hold when ``test`` evaluated to ``polarity``.

    Short-circuit semantics: when an ``and`` chain is true every operand
    is true; when an ``or`` chain is false every operand is false.  The
    opposite polarities pin down nothing (any operand may have decided).
    """
    if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        return conditions(test.operand, not polarity)
    if isinstance(test, ast.BoolOp):
        wanted = isinstance(test.op, ast.And) if polarity \
            else isinstance(test.op, ast.Or)
        if not wanted:
            return []
        out: list[tuple[ast.expr, bool]] = []
        for operand in test.values:
            out.extend(conditions(operand, polarity))
        return out
    return [(test, polarity)]


_State = Any


def solve(cfg: Cfg, entry_state: _State,
          transfer: Callable[[Node, _State], _State],
          edge_transfer: Callable[[Edge, _State], Optional[_State]],
          meet: Callable[[_State, _State], _State],
          exc_transfer: Optional[
              Callable[[Edge, _State, Node], Optional[_State]]] = None,
          ) -> dict[int, _State]:
    """Forward dataflow to fixpoint.  Returns the IN state per reachable
    node index (unreachable nodes are absent).

    ``edge_transfer`` may return ``None`` to kill an edge (e.g. a branch
    the pass can prove untaken); ``exc_transfer`` (default: identity on
    the *pre*-state) does the same for exception edges.
    """
    ins: dict[int, _State] = {cfg.entry: entry_state}
    work: deque[int] = deque([cfg.entry])
    queued = {cfg.entry}
    while work:
        i = work.popleft()
        queued.discard(i)
        in_i = ins[i]
        out_i = transfer(cfg.nodes[i], in_i)
        for e in cfg.succs[i]:
            if e.exc:
                contrib = (exc_transfer(e, in_i, cfg.nodes[i])
                           if exc_transfer is not None else in_i)
            else:
                contrib = edge_transfer(e, out_i)
            if contrib is None:
                continue
            old = ins.get(e.dst)
            new = contrib if old is None else meet(old, contrib)
            if new != old:
                ins[e.dst] = new
                if e.dst not in queued:
                    work.append(e.dst)
                    queued.add(e.dst)
    return ins


def dominators(cfg: Cfg) -> dict[int, frozenset[int]]:
    """Classic iterative dominator sets over all edges (exception edges
    included): ``dominators(cfg)[n]`` is the set of nodes on every path
    from entry to ``n``."""
    preds = cfg.preds()
    all_nodes = frozenset(range(len(cfg.nodes)))
    dom: dict[int, frozenset[int]] = {
        n: all_nodes for n in range(len(cfg.nodes))}
    dom[cfg.entry] = frozenset({cfg.entry})
    changed = True
    while changed:
        changed = False
        for n in range(len(cfg.nodes)):
            if n == cfg.entry:
                continue
            incoming = [dom[e.src] for e in preds[n]]
            if incoming:
                new = frozenset.intersection(*incoming) | {n}
            else:
                new = frozenset({n})
            if new != dom[n]:
                dom[n] = new
                changed = True
    return dom
