"""Resource-pairing analysis (LEAK001-003).

May-analysis over the per-function CFG: an *acquire* creates a tracked
resource item; the item must be gone -- released, refined away, or
ownership-transferred -- on every path reaching the function's normal or
exceptional exit.  Exception edges carry the state holding *before* the
raising statement, so an acquire interrupted mid-wait does not hold, and
a statement that can raise between acquire and ``try`` leaks whatever
was held on entry to it (the class of bug PRs 1-3 each fixed once).

Rules
-----
LEAK001   connection/CPU/NIC lease (``acquire``/``try_acquire``/
          ``request``/``acquire_backend``) without a paired ``release``
          on some path.
LEAK002   mapping-table entry (``create``) neither aborted/deleted nor
          handed off on some path.
LEAK003   admission slot (``admission.admit``) without a paired
          ``admission.release`` on some path.

Tracking discipline (kept deliberately first-order):

* Releases match on the receiver expression text and, for var-carrying
  resources, the lease variable appearing in the call arguments.
* Release-type calls and ``try_acquire`` are treated as non-raising, so
  a cleanup sequence does not generate bogus exception paths.
* Truthiness refinement: on the false edge of ``if token`` (or the true
  edge of ``token is None``) the item is dropped -- a failed conditional
  acquire holds nothing.  Same for a boolean admit result.
* Membership refinement (mapping entries): ``entry.client in
  self.mapping`` drops the item on the not-present edge.
* Ownership transfer ends tracking: returning/yielding the lease,
  storing it into an attribute or container, capturing it in a lambda,
  or passing it to a call on a *different* receiver than the resource's
  (e.g. ``self._finish(entry, ...)`` hands the entry to the finisher).
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Optional

from ..violations import Violation
from .cfg import Edge, Node, build_cfg, conditions, solve, walk_scoped

__all__ = ["ResourceSpec", "RESOURCES", "analyze_leaks"]


@dataclasses.dataclass(frozen=True)
class ResourceSpec:
    rule: str
    label: str
    acquires: tuple[str, ...]
    releases: tuple[str, ...]
    #: substring the acquire receiver text must contain (None = any)
    recv_contains: Optional[str] = None
    #: a matching release must mention the lease variable
    release_needs_var: bool = True
    #: ``var... in <receiver>`` tests refine the not-present edge
    membership_refines: bool = False


RESOURCES: tuple[ResourceSpec, ...] = (
    ResourceSpec("LEAK001", "lease",
                 acquires=("acquire", "try_acquire", "request",
                           "acquire_backend"),
                 releases=("release", "release_backend")),
    ResourceSpec("LEAK002", "mapping entry",
                 acquires=("create",),
                 releases=("abort", "delete"),
                 recv_contains="mapping",
                 membership_refines=True),
    ResourceSpec("LEAK003", "admission slot",
                 acquires=("admit",),
                 releases=("release",),
                 recv_contains="admission",
                 release_needs_var=False),
)

#: method names whose calls cannot raise for pairing purposes: cleanup
#: calls and conditional acquires must not spawn phantom exception paths
NONRAISING = frozenset(
    {m for spec in RESOURCES for m in spec.releases} | {"try_acquire"})


@dataclasses.dataclass(frozen=True)
class _Item:
    spec_index: int
    var: str  # "" when the acquire result is not bound to a name
    recv: str
    line: int

    @property
    def spec(self) -> ResourceSpec:
        return RESOURCES[self.spec_index]


_State = frozenset


def _recv_text(call: ast.Call) -> Optional[str]:
    if isinstance(call.func, ast.Attribute):
        return ast.unparse(call.func.value)
    return None


def _mentions(tree: ast.AST, name: str) -> bool:
    return any(isinstance(sub, ast.Name) and sub.id == name
               for sub in walk_scoped(tree))


def _calls(tree: ast.AST) -> list[ast.Call]:
    return [sub for sub in walk_scoped(tree)
            if isinstance(sub, ast.Call)]


def _find_acquires(stmt: ast.AST) -> list[tuple[int, str, str, int]]:
    """(spec index, bound var, receiver, line) for acquires in ``stmt``."""
    var = ""
    value: Optional[ast.AST] = stmt
    if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 and \
            isinstance(stmt.targets[0], ast.Name):
        var = stmt.targets[0].id
        value = stmt.value
    elif isinstance(stmt, ast.AnnAssign) and \
            isinstance(stmt.target, ast.Name):
        var = stmt.target.id
        value = stmt.value
    elif isinstance(stmt, ast.Expr):
        value = stmt.value
    elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
        value = getattr(stmt, "value", None)
    if value is None:
        return []
    # the generic ``request`` name only counts when yielded -- the
    # Resource protocol is ``req = yield r.request()``; plain calls
    # named "request" elsewhere (HTTP factories) are unrelated
    yielded: set[int] = set()
    for sub in walk_scoped(value):
        if isinstance(sub, (ast.Yield, ast.YieldFrom, ast.Await)) and \
                isinstance(sub.value, ast.Call):
            yielded.add(id(sub.value))
    out = []
    for call in _calls(value):
        if not isinstance(call.func, ast.Attribute):
            continue
        recv = _recv_text(call)
        if recv is None:
            continue
        for idx, spec in enumerate(RESOURCES):
            if call.func.attr not in spec.acquires:
                continue
            if call.func.attr == "request" and id(call) not in yielded:
                continue
            if spec.recv_contains is not None and \
                    spec.recv_contains not in recv:
                continue
            out.append((idx, var, recv, call.lineno))
    return out


def _node_is_nonraising(node: Node) -> bool:
    """True when every raise-capable construct in the node is one of the
    non-raising pairing methods (cleanup sequences)."""
    roots = node.scan_roots()
    if not roots:
        return True
    for root in roots:
        for sub in walk_scoped(root):
            if isinstance(sub, (ast.Yield, ast.YieldFrom, ast.Await,
                                ast.Raise)):
                return False
            if isinstance(sub, ast.Call):
                if not (isinstance(sub.func, ast.Attribute)
                        and sub.func.attr in NONRAISING):
                    return False
    return True


def _release_matches(item: _Item, call: ast.Call) -> bool:
    if not isinstance(call.func, ast.Attribute):
        return False
    spec = item.spec
    if call.func.attr not in spec.releases:
        return False
    arg_trees = list(call.args) + [kw.value for kw in call.keywords]
    if spec.release_needs_var and item.var:
        return any(_mentions(a, item.var) for a in arg_trees)
    return _recv_text(call) == item.recv


def _escapes(item: _Item, stmt: ast.AST) -> bool:
    """Ownership leaves this function's hands at ``stmt``."""
    if not item.var:
        return False
    if isinstance(stmt, (ast.Return, ast.Expr)) and \
            isinstance(getattr(stmt, "value", None), (ast.Yield,
                                                      ast.YieldFrom)):
        value = stmt.value.value  # type: ignore[union-attr]
        if value is not None and _mentions(value, item.var):
            return True
    if isinstance(stmt, ast.Return) and stmt.value is not None and \
            not any(True for _ in _calls(stmt.value)) and \
            _mentions(stmt.value, item.var):
        return True  # plain ``return lease``: caller owns it now
    for sub in walk_scoped(stmt):
        if isinstance(sub, ast.Lambda) and _mentions(sub.body, item.var):
            return True  # deferred release closure
        if isinstance(sub, (ast.Assign, ast.AugAssign)):
            targets = sub.targets if isinstance(sub, ast.Assign) \
                else [sub.target]
            stored = any(isinstance(t, (ast.Attribute, ast.Subscript))
                         for t in targets)
            value = sub.value
            if stored and value is not None and \
                    _mentions(value, item.var):
                return True
        if isinstance(sub, ast.Call) and \
                any(_mentions(a, item.var)
                    for a in list(sub.args)
                    + [kw.value for kw in sub.keywords]):
            if _release_matches(item, sub):
                continue
            recv = _recv_text(sub)
            if recv != item.recv:
                return True  # handed to another component
    return False


def _dispose(node: Node, state: _State) -> _State:
    """Apply releases and ownership transfers (not acquires)."""
    roots = node.scan_roots()
    if not roots or not state:
        return state
    items = set(state)
    for root in roots:
        # releases first: the release call must not read as an escape
        for call in _calls(root):
            for item in list(items):
                if _release_matches(item, call):
                    items.discard(item)
        for item in list(items):
            if _escapes(item, root):
                items.discard(item)
    return frozenset(items)


def _transfer(node: Node, state: _State) -> _State:
    roots = node.scan_roots()
    if not roots:
        return state
    items = set(_dispose(node, state))
    for root in roots:
        for spec_idx, var, recv, line in _find_acquires(root):
            if var:
                items = {i for i in items if i.var != var}
            items.add(_Item(spec_index=spec_idx, var=var, recv=recv,
                            line=line))
    # rebinding a tracked variable ends the old item
    for root in roots:
        if isinstance(root, ast.Assign):
            for t in root.targets:
                for name in ([t] if isinstance(t, ast.Name)
                             else list(ast.walk(t))):
                    if isinstance(name, ast.Name):
                        items = {i for i in items
                                 if i.var != name.id
                                 or i.line == getattr(root, "lineno", -1)}
    return frozenset(items)


def _edge_transfer(edge: Edge, state: _State) -> Optional[_State]:
    if edge.test is None or not state:
        return state
    items = set(state)
    for expr, pol in conditions(edge.test, edge.polarity or False):
        # truthiness / None-ness of the lease variable
        target: Optional[ast.expr] = None
        truthy = pol
        if isinstance(expr, ast.Compare) and len(expr.ops) == 1 and \
                isinstance(expr.ops[0], (ast.Is, ast.IsNot)) and \
                isinstance(expr.comparators[0], ast.Constant) and \
                expr.comparators[0].value is None:
            target = expr.left
            is_none = isinstance(expr.ops[0], ast.Is)
            truthy = (not pol) if is_none else pol
        elif isinstance(expr, ast.Name):
            target = expr
        if isinstance(target, ast.Name):
            if not truthy:
                items = {i for i in items if i.var != target.id}
        # membership refinement: ``entry.client in self.mapping``
        if isinstance(expr, ast.Compare) and len(expr.ops) == 1 and \
                isinstance(expr.ops[0], (ast.In, ast.NotIn)):
            present = pol if isinstance(expr.ops[0], ast.In) else not pol
            if not present:
                recv = ast.unparse(expr.comparators[0])
                items = {
                    i for i in items
                    if not (i.spec.membership_refines
                            and i.recv == recv and i.var
                            and _mentions(expr.left, i.var))}
    return frozenset(items)


def _exc_transfer(edge: Edge, in_state: _State,
                  node: Node) -> Optional[_State]:
    if _node_is_nonraising(node):
        return None
    # a raise mid-statement still counts the statement's own releases
    # and hand-offs (the receiving side owns cleanup once called); an
    # acquire in the same statement has NOT happened on this edge
    return _dispose(node, in_state)


def analyze_leaks(tree: ast.Module, path: str) -> list[Violation]:
    """Run the resource-pairing pass over one module."""
    out: set[Violation] = set()
    for func in ast.walk(tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if not any(isinstance(sub, (ast.Yield, ast.YieldFrom))
                   for sub in walk_scoped(func)):
            # pairing is checked in process code, where Interrupt makes
            # every exception edge live; synchronous event handlers hand
            # resources off across functions by design
            continue
        cfg = build_cfg(func)
        ins = solve(cfg, frozenset(), transfer=_transfer,
                    edge_transfer=_edge_transfer,
                    meet=lambda a, b: a | b,
                    exc_transfer=_exc_transfer)
        leaked: set[_Item] = set()
        for exit_index in (cfg.exit, cfg.exc_exit):
            for item in ins.get(exit_index, frozenset()):
                leaked.add(item)
        for item in sorted(leaked, key=lambda i: (i.line, i.var)):
            spec = item.spec
            handle = f"'{item.var}' " if item.var else ""
            out.add(Violation(
                rule=spec.rule, path=path, line=item.line,
                message=(f"{spec.label} {handle}acquired via "
                         f"'{item.recv}.{spec.acquires[0]}(...)'-family "
                         f"call may not be released on every path; pair "
                         f"it in a 'finally' or refine the failing "
                         f"branch"),
                pass_name="deep"))
    return sorted(out, key=lambda v: (v.line, v.rule, v.message))
