"""Gate-dominance analysis (GATE001-004).

The repo's opt-in subsystems -- tracing, overload control, loss
injection, NFS backends, lifecycle hooks -- are all wired as optional
attributes that are ``None`` when disabled.  The determinism contract
requires every dereference of such a *gate* to be dominated by a
``gate is not None`` check (or an equivalent witness, see below).  This
pass proves that on the per-function CFG: the fact set reaching a node
under must-intersection contains ``nn:<gate>`` exactly when every path
from entry passes a true edge of a null check.

Rules
-----
GATE001   tracer API call (``point``/``begin``/``end``/``new_trace``)
          not dominated by a tracer guard.
GATE002   other gated subsystem (overload control, retry budget, NFS,
          loss RNG, lifecycle hook) dereferenced without its guard.
GATE003   ``fast_path`` branch whose false edge falls off the function
          exit -- i.e. no reachable slow-path fallback for the
          operation.
GATE004   gate dereferenced where it is *known* ``None`` (dominated by
          the guard's false edge).

Registering a new gated subsystem is one line in :data:`GATES`.

Precision notes
---------------
* A field is only treated as a gate inside classes where it can
  actually be ``None`` (some assignment of ``None``, a parameter that
  defaults to ``None``, or an ``Optional`` annotation).
  ``OverloadControl.retry_budget`` is constructed unconditionally and
  is exempt; ``FailoverPair.retry_budget`` is optional and checked.
* Locals are tracked as gate aliases when every assignment to them
  copies a gate attribute (``tracer = self.tracer``); parameters named
  after a gate are aliases too, and a parameter *without* a ``None``
  default is assumed non-null at entry (the caller's obligation).
* Witness variables: a local assigned only ``None`` and
  ``<gate>.method(...)`` results (the ``span = tracer.begin(...)``
  idiom) is a witness -- ``witness is not None`` implies the gate is
  non-null.
* Callback-under-gate: a method registered as a callback only where a
  gate is known non-null (``self.mapping.on_transition =
  self._trace_splice`` under ``if tracer is not None``) is re-analyzed
  with that gate fact at entry, provided the class never calls it
  directly.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Optional

from ..violations import Violation
from .cfg import Cfg, Edge, Node, build_cfg, conditions, solve, walk_scoped

__all__ = ["GateSpec", "GATES", "FAST_PATH_ATTR", "analyze_gates"]


@dataclasses.dataclass(frozen=True)
class GateSpec:
    """One gated subsystem: the attribute that holds it and what counts
    as a guarded use."""

    attr: str
    rule: str
    #: member names whose access is flagged; ``None`` flags any member
    #: access (consumer-only members can be left out, e.g. reading
    #: ``tracer.events`` after a run needs no gate).
    api: Optional[tuple[str, ...]] = None
    #: the gate itself is callable (lifecycle hooks): flag direct calls
    callable_gate: bool = False
    describe: str = ""


#: The registry.  New gated subsystems (compiled scheduler backend,
#: sweep engine, ...) add one line here.
GATES: tuple[GateSpec, ...] = (
    GateSpec("tracer", "GATE001",
             api=("point", "begin", "end", "new_trace"),
             describe="tracer"),
    GateSpec("overload", "GATE002", describe="overload control"),
    GateSpec("retry_budget", "GATE002", describe="retry budget"),
    GateSpec("nfs", "GATE002", describe="NFS backend"),
    GateSpec("_loss_rng", "GATE002", describe="loss injection"),
    GateSpec("on_transition", "GATE002", callable_gate=True,
             describe="transition hook"),
    GateSpec("on_response", "GATE002", callable_gate=True,
             describe="response hook"),
    GateSpec("on_progress", "GATE002", callable_gate=True,
             describe="sweep progress hook"),
    # management-plane durability (DESIGN §14): the WAL plumbing is a
    # classic None-gated subsystem; only its *mutating* API needs the
    # guard (post-run reads of counters/open intents are consumer-only)
    GateSpec("durability", "GATE002",
             api=("log_intent", "log_dispatch", "log_apply", "log_commit",
                  "log_abort", "boundary", "maybe_checkpoint", "attach",
                  "take_checkpoint"),
             describe="controller durability (WAL)"),
    GateSpec("lease", "GATE002", describe="distributor lease"),
    GateSpec("recover_state", "GATE002", callable_gate=True,
             describe="takeover state-recovery hook"),
    GateSpec("crash_plan", "GATE002", describe="crash-point plan"),
    # kernel telemetry plane (DESIGN §15): both observers hang off the
    # simulator as None-gated hooks; only the hot-loop probe API needs
    # the guard (post-run reads of reports/series are consumer-only)
    GateSpec("kernel_stats", "GATE002",
             api=("on_scheduled", "on_fired", "on_cancelled",
                  "on_pool_recycle", "on_fast_path"),
             describe="kernel scheduler introspection"),
    GateSpec("telemetry", "GATE002",
             api=("on_event", "add_gauge", "add_cumulative", "finalize"),
             describe="telemetry sampler"),
)

FAST_PATH_ATTR = "fast_path"

#: Pooled-object recycling sites (scheduler overhaul, DESIGN §16): a
#: ``fast_path`` branch whose body only returns hot objects to a pool is
#: an allocation optimisation, not an operation -- the slow path simply
#: allocates fresh objects, so no fallback edge is required.  A branch
#: qualifies when every statement appends to a ``*_pool`` attribute or
#: calls a ``recycle_*`` API.
POOL_SINK_SUFFIX = "_pool"
POOL_RECYCLE_PREFIX = "recycle_"

_GATE_BY_ATTR = {g.attr: g for g in GATES}


def _is_none(expr: ast.AST) -> bool:
    return isinstance(expr, ast.Constant) and expr.value is None


def _param_table(func: ast.FunctionDef | ast.AsyncFunctionDef,
                 ) -> dict[str, Optional[ast.expr]]:
    """Parameter name -> default expression (``None`` entry when the
    parameter has no default)."""
    args = func.args
    table: dict[str, Optional[ast.expr]] = {}
    positional = args.posonlyargs + args.args
    defaults: list[Optional[ast.expr]] = (
        [None] * (len(positional) - len(args.defaults))
        + list(args.defaults))
    for a, d in zip(positional, defaults):
        table[a.arg] = d
    for a, d in zip(args.kwonlyargs, args.kw_defaults):
        table[a.arg] = d
    return table


def _class_optional_attrs(cls: ast.ClassDef) -> frozenset[str]:
    """Gate attributes that can be ``None`` on instances of ``cls``."""
    optional: set[str] = set()
    assigned: set[str] = set()
    # class-level (dataclass-style) fields
    for stmt in cls.body:
        if isinstance(stmt, ast.AnnAssign) and \
                isinstance(stmt.target, ast.Name):
            name = stmt.target.id
            if name in _GATE_BY_ATTR:
                assigned.add(name)
                ann = ast.unparse(stmt.annotation)
                if (stmt.value is not None and _is_none(stmt.value)) or \
                        "Optional" in ann or "None" in ann:
                    optional.add(name)
    for func in cls.body:
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        params = _param_table(func)
        for sub in walk_scoped(func):
            targets: list[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(sub, ast.Assign):
                targets, value = sub.targets, sub.value
            elif isinstance(sub, ast.AnnAssign) and sub.value is not None:
                targets, value = [sub.target], sub.value
            for t in targets:
                if not (isinstance(t, ast.Attribute)
                        and isinstance(t.value, ast.Name)
                        and t.value.id == "self"
                        and t.attr in _GATE_BY_ATTR):
                    continue
                assigned.add(t.attr)
                if value is None or _is_none(value):
                    optional.add(t.attr)
                elif isinstance(value, ast.Name) and value.id in params:
                    default = params[value.id]
                    if default is not None and _is_none(default):
                        optional.add(t.attr)
    # a gate attribute never assigned in the class is not this class's
    # gate (inherited always-set fields would false-positive otherwise)
    return frozenset(optional & assigned)


class _FuncEnv:
    """Name resolution for one function: which expressions refer to
    which gate, plus witness variables."""

    def __init__(self, func: ast.FunctionDef | ast.AsyncFunctionDef,
                 optional_attrs: frozenset[str]):
        self.func = func
        self.optional_attrs = optional_attrs
        self.params = _param_table(func)
        self.aliases: dict[str, str] = {}    # local/param name -> gate
        self.witnesses: dict[str, str] = {}  # witness name -> gate
        self.entry_facts: set[str] = set()
        self._discover()

    # -- reference classification ------------------------------------------
    def gate_of_attr(self, expr: ast.Attribute) -> Optional[str]:
        """Gate key when ``expr`` is a gate attribute reference.

        Only ``self.<gate>`` counts: gates are per-instance fields, and
        whether a *foreign* object's field can be ``None`` is that
        class's contract (``ctl.retry_budget`` on an ``OverloadControl``
        is always set; the enclosing ``ctl`` access is itself checked as
        a use of the ``overload`` gate)."""
        if expr.attr not in _GATE_BY_ATTR:
            return None
        if isinstance(expr.value, ast.Name) and expr.value.id == "self":
            return expr.attr if expr.attr in self.optional_attrs else None
        return None

    def key_of(self, expr: ast.AST) -> Optional[str]:
        """Fact key for a guardable expression: the gate name, or
        ``w:<name>`` for a witness variable."""
        if isinstance(expr, ast.Attribute):
            return self.gate_of_attr(expr)
        if isinstance(expr, ast.Name):
            if expr.id in self.aliases:
                return self.aliases[expr.id]
            if expr.id in self.witnesses:
                return f"w:{expr.id}"
        return None

    def _discover(self) -> None:
        for name in self.params:
            if name in _GATE_BY_ATTR:
                self.aliases[name] = name
                default = self.params[name]
                if default is None:
                    # required parameter: the caller must pass a live
                    # instance (e.g. obs exporters)
                    self.entry_facts.add(f"nn:{name}")
        # local assignment census
        assigns: dict[str, list[ast.expr]] = {}
        for sub in walk_scoped(self.func):
            if isinstance(sub, ast.Assign):
                for t in sub.targets:
                    if isinstance(t, ast.Name):
                        assigns.setdefault(t.id, []).append(sub.value)
            elif isinstance(sub, ast.AnnAssign) and sub.value is not None \
                    and isinstance(sub.target, ast.Name):
                assigns.setdefault(sub.target.id, []).append(sub.value)
        # phase 1 -- aliases (``tracer = self.tracer``); phase 2 --
        # witnesses (``span = tracer.begin(...)``), which may reference
        # aliases discovered in phase 1 regardless of name order
        for name, values in sorted(assigns.items()):
            if name in self.aliases:
                continue
            gates = set()
            other = False
            for v in values:
                if _is_none(v):
                    continue
                g = self.gate_of_attr(v) \
                    if isinstance(v, ast.Attribute) else None
                if g is not None:
                    gates.add(g)
                else:
                    other = True
            if not other and len(gates) == 1:
                self.aliases[name] = gates.pop()
        for name, values in sorted(assigns.items()):
            if name in self.aliases:
                continue
            witness_gates = set()
            other = False
            for v in values:
                if _is_none(v):
                    continue
                g = None
                if isinstance(v, ast.Call) and \
                        isinstance(v.func, ast.Attribute):
                    g = self.key_of(v.func.value)
                if g is not None and not g.startswith("w:"):
                    witness_gates.add(g)
                else:
                    other = True
            if not other and len(witness_gates) == 1:
                self.witnesses[name] = witness_gates.pop()

    def implied_gate(self, key: str) -> Optional[str]:
        """Gate implied non-null by fact ``nn:<key>``."""
        if key.startswith("w:"):
            return self.witnesses.get(key[2:])
        return key


_Facts = frozenset


def _cond_facts(env: _FuncEnv, expr: ast.expr, pol: bool) -> set[str]:
    """Facts established when atomic condition ``expr`` == ``pol``."""
    if isinstance(expr, ast.Compare) and len(expr.ops) == 1 and \
            isinstance(expr.ops[0], (ast.Is, ast.IsNot)) and \
            _is_none(expr.comparators[0]):
        key = env.key_of(expr.left)
        if key is None:
            return set()
        is_none_when_true = isinstance(expr.ops[0], ast.Is)
        if is_none_when_true == pol:
            return {f"null:{key}"}
        return {f"nn:{key}"}
    key = env.key_of(expr)  # bare truthiness: ``if self.tracer:``
    if key is not None:
        return {f"nn:{key}"} if pol else {f"null:{key}"}
    return set()


def _edge_facts(env: _FuncEnv, edge: Edge,
                facts: _Facts) -> Optional[_Facts]:
    if edge.test is None:
        return facts
    gained: set[str] = set()
    for expr, pol in conditions(edge.test, edge.polarity or False):
        gained |= _cond_facts(env, expr, pol)
    if not gained:
        return facts
    # a gained fact supersedes its opposite
    drop = {("null:" + f[3:]) if f.startswith("nn:") else ("nn:" + f[5:])
            for f in gained}
    return frozenset((set(facts) - drop) | gained)


def _kill(facts: set[str], key: str) -> None:
    facts.discard(f"nn:{key}")
    facts.discard(f"null:{key}")


def _transfer(env: _FuncEnv, node: Node, facts: _Facts) -> _Facts:
    out = set(facts)
    if node.kind == "loop" and node.stmt is not None and \
            isinstance(node.stmt, (ast.For, ast.AsyncFor)):
        for sub in ast.walk(node.stmt.target):
            if isinstance(sub, ast.Name):
                key = env.key_of(sub)
                if key is not None:
                    _kill(out, key)
        return frozenset(out)
    stmt = node.stmt
    if node.kind != "stmt" or stmt is None:
        return facts
    targets: list[tuple[ast.expr, Optional[ast.expr]]] = []
    if isinstance(stmt, ast.Assign):
        targets = [(t, stmt.value) for t in stmt.targets]
    elif isinstance(stmt, ast.AnnAssign):
        targets = [(stmt.target, stmt.value)]
    elif isinstance(stmt, ast.AugAssign):
        targets = [(stmt.target, None)]
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        targets = [(item.optional_vars, None) for item in stmt.items
                   if item.optional_vars is not None]
    for target, value in targets:
        for t in ast.walk(target) if isinstance(target, ast.Tuple) \
                else [target]:
            key = None
            if isinstance(t, ast.Name):
                key = env.key_of(t)
                if key is not None and value is not None and \
                        env.key_of(value) == key:
                    continue  # re-alias of the same gate: facts survive
                if key is not None:
                    _kill(out, key)
            elif isinstance(t, ast.Attribute):
                key = env.gate_of_attr(t)
                if key is None:
                    continue
                if value is not None and env.key_of(value) == key:
                    continue
                _kill(out, key)
                if value is not None and _is_none(value):
                    out.add(f"null:{key}")
                elif isinstance(value, (ast.Call, ast.Lambda)) or (
                        isinstance(value, ast.Constant)
                        and value.value is not None):
                    out.add(f"nn:{key}")
    return frozenset(out)


@dataclasses.dataclass
class _Finding:
    rule: str
    line: int
    message: str


class _UseScanner:
    """Walk one node's expressions, tracking short-circuit facts inside
    the expression itself (``x is not None and x.f()``), flagging gate
    uses not covered by the facts."""

    def __init__(self, env: _FuncEnv, class_methods: frozenset[str]):
        self.env = env
        self.class_methods = class_methods
        self.findings: list[_Finding] = []
        #: bare ``self.<method>`` references (callback registrations)
        #: with the nn-gates that held there
        self.method_refs: list[tuple[str, frozenset[str]]] = []
        #: methods the class calls directly (vetoes callback grants)
        self.direct_calls: set[str] = set()

    # -- fact queries -------------------------------------------------------
    def _known_nonnull(self, gate: str, facts: _Facts) -> bool:
        if f"nn:{gate}" in facts:
            return True
        for fact in facts:
            if fact.startswith("nn:w:") and \
                    self.env.implied_gate(fact[3:]) == gate:
                return True
        return False

    def _flag_use(self, gate: str, member: Optional[str], line: int,
                  facts: _Facts) -> None:
        spec = _GATE_BY_ATTR[gate]
        if spec.api is not None and member is not None and \
                member not in spec.api:
            return
        if self._known_nonnull(gate, facts):
            return
        what = f"{gate}.{member}" if member is not None else f"{gate}(...)"
        if f"null:{gate}" in facts:
            self.findings.append(_Finding(
                "GATE004", line,
                f"'{what}' used where {spec.describe} is known to be "
                f"None"))
        else:
            self.findings.append(_Finding(
                spec.rule, line,
                f"'{what}' not dominated by a '{gate} is not None' "
                f"guard ({spec.describe} is optional)"))

    # -- traversal ----------------------------------------------------------
    def scan(self, tree: ast.AST, facts: _Facts) -> None:
        self._visit(tree, facts, in_call_func=False)

    def _visit(self, node: ast.AST, facts: _Facts,
               in_call_func: bool) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef, ast.Lambda)):
            return  # separate scope, analyzed on its own
        if isinstance(node, ast.BoolOp):
            pol = isinstance(node.op, ast.And)
            acc = facts
            for operand in node.values:
                self._visit(operand, acc, False)
                extra = _cond_facts(self.env, operand, pol)
                for expr, p in conditions(operand, pol):
                    extra |= _cond_facts(self.env, expr, p)
                if extra:
                    acc = frozenset(set(acc) | extra)
            return
        if isinstance(node, ast.IfExp):
            self._visit(node.test, facts, False)
            true_f = _edge_facts(
                self.env, Edge(0, 0, test=node.test, polarity=True), facts)
            false_f = _edge_facts(
                self.env, Edge(0, 0, test=node.test, polarity=False), facts)
            self._visit(node.body, true_f or facts, False)
            self._visit(node.orelse, false_f or facts, False)
            return
        if isinstance(node, ast.Call):
            func = node.func
            key = self.env.key_of(func)
            if key is not None and not key.startswith("w:") and \
                    _GATE_BY_ATTR[key].callable_gate:
                self._flag_use(key, None, node.lineno, facts)
            if isinstance(func, ast.Attribute) and \
                    isinstance(func.value, ast.Name) and \
                    func.value.id == "self" and \
                    func.attr in self.class_methods:
                self.direct_calls.add(func.attr)
            self._visit(func, facts, in_call_func=True)
            for arg in node.args:
                self._visit(arg, facts, False)
            for kw in node.keywords:
                self._visit(kw.value, facts, False)
            return
        if isinstance(node, ast.Attribute):
            inner = node.value
            gate = self.env.key_of(inner)
            if gate is not None and not gate.startswith("w:"):
                self._flag_use(gate, node.attr, node.lineno, facts)
            if not in_call_func and isinstance(inner, ast.Name) and \
                    inner.id == "self" and \
                    node.attr in self.class_methods and \
                    isinstance(node.ctx, ast.Load):
                held = frozenset(
                    f[3:] for f in facts
                    if f.startswith("nn:") and not f.startswith("nn:w:"))
                self.method_refs.append((node.attr, held))
            self._visit(inner, facts, False)
            return
        for child in ast.iter_child_nodes(node):
            self._visit(child, facts, False)


def _is_pool_recycle_body(body: list[ast.stmt]) -> bool:
    """True when every statement recycles an object into a pool."""
    for stmt in body:
        if not isinstance(stmt, ast.Expr) or \
                not isinstance(stmt.value, ast.Call):
            return False
        func = stmt.value.func
        if not isinstance(func, ast.Attribute):
            return False
        if func.attr.startswith(POOL_RECYCLE_PREFIX):
            continue
        if func.attr == "append" and isinstance(func.value, ast.Attribute) \
                and func.value.attr.endswith(POOL_SINK_SUFFIX):
            continue
        return False
    return bool(body)


def _fast_path_findings(cfg: Cfg) -> list[_Finding]:
    """GATE003: a ``fast_path`` branch whose false edge reaches the
    function exit without executing anything -- no slow-path fallback.
    Pool-recycle branches (see :data:`POOL_SINK_SUFFIX`) are exempt."""
    out: list[_Finding] = []
    for node in cfg.nodes:
        if node.kind != "test" or node.expr is None or \
                not isinstance(node.stmt, ast.If):
            continue
        if _is_pool_recycle_body(node.stmt.body):
            continue
        mentions = any(
            (isinstance(sub, ast.Attribute) and sub.attr == FAST_PATH_ATTR)
            or (isinstance(sub, ast.Name) and sub.id == FAST_PATH_ATTR)
            for sub in walk_scoped(node.expr))
        if not mentions:
            continue
        for edge in cfg.succs[node.index]:
            if edge.exc or edge.polarity is not False:
                continue
            cur = edge.dst
            seen = set()
            while cfg.nodes[cur].kind == "merge" and cur not in seen:
                seen.add(cur)
                nxt = [e.dst for e in cfg.succs[cur] if not e.exc]
                if len(nxt) != 1:
                    break
                cur = nxt[0]
            if cfg.nodes[cur].kind == "exit":
                out.append(_Finding(
                    "GATE003", node.line,
                    "fast_path branch has no slow-path fallback: the "
                    "non-fast edge falls off the function exit"))
    return out


def _analyze_function(func: ast.FunctionDef | ast.AsyncFunctionDef,
                      optional_attrs: frozenset[str],
                      class_methods: frozenset[str],
                      extra_entry_facts: frozenset[str] = frozenset(),
                      ) -> tuple[list[_Finding],
                                 list[tuple[str, frozenset[str]]],
                                 set[str]]:
    env = _FuncEnv(func, optional_attrs)
    cfg = build_cfg(func)
    entry = frozenset(env.entry_facts) | extra_entry_facts
    ins = solve(
        cfg, entry,
        transfer=lambda node, facts: _transfer(env, node, facts),
        edge_transfer=lambda edge, facts: _edge_facts(env, edge, facts),
        meet=lambda a, b: a & b)
    scanner = _UseScanner(env, class_methods)
    for node in cfg.nodes:
        if node.index not in ins:
            continue  # unreachable
        for root in node.scan_roots():
            scanner.scan(root, ins[node.index])
    findings = scanner.findings + _fast_path_findings(cfg)
    return findings, scanner.method_refs, scanner.direct_calls


def analyze_gates(tree: ast.Module, path: str) -> list[Violation]:
    """Run the gate-dominance pass over one module."""
    findings: dict[str, list[_Finding]] = {}  # func id -> findings

    def run_scope(funcs: list[ast.FunctionDef | ast.AsyncFunctionDef],
                  optional_attrs: frozenset[str],
                  class_methods: frozenset[str]) -> None:
        refs: dict[str, list[frozenset[str]]] = {}
        direct: set[str] = set()
        by_name: dict[str, ast.AST] = {}
        for func in funcs:
            fid = f"{func.lineno}:{func.name}"
            by_name.setdefault(func.name, func)
            f, method_refs, direct_calls = _analyze_function(
                func, optional_attrs, class_methods)
            findings[fid] = f
            direct |= direct_calls
            for name, held in method_refs:
                refs.setdefault(name, []).append(held)
        # callback-under-gate: re-analyze methods only ever referenced
        # (registered) where a gate was known non-null
        for name, held_sets in sorted(refs.items()):
            if name in direct or name not in by_name:
                continue
            granted = frozenset.intersection(*held_sets)
            granted = frozenset(g for g in granted if g in optional_attrs)
            if not granted:
                continue
            func = by_name[name]
            fid = f"{func.lineno}:{func.name}"
            entry = frozenset(f"nn:{g}" for g in granted)
            f, _, _ = _analyze_function(
                func, optional_attrs, class_methods,  # type: ignore[arg-type]
                extra_entry_facts=entry)
            findings[fid] = f

    top_funcs = [n for n in tree.body
                 if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))]
    run_scope(top_funcs, frozenset(g.attr for g in GATES), frozenset())

    for cls in ast.walk(tree):
        if not isinstance(cls, ast.ClassDef):
            continue
        methods = [n for n in cls.body
                   if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))]
        run_scope(methods, _class_optional_attrs(cls),
                  frozenset(m.name for m in methods))

    out = []
    for flist in findings.values():
        for f in flist:
            out.append(Violation(rule=f.rule, path=path, line=f.line,
                                 message=f.message, pass_name="deep"))
    return sorted(set(out), key=lambda v: (v.line, v.rule, v.message))
