"""Pragmas, baseline file, and deterministic rendering for deep checks.

Suppression has two layers, mirroring the determinism linter:

* **Pragmas** -- a trailing ``# det: allow[tag]`` on the flagged line.
  Accepted tags: the exact rule code (``gate001``), the rule family
  (``gate``/``leak``/``yld``), ``deep``, or ``*``.
* **Baseline** -- a checked-in sorted file of rendered findings
  (``deep-baseline.txt`` at the repo root).  Findings present in the
  baseline are not *new* and do not fail the build; the file is kept
  empty on purpose -- real findings get fixed, not baselined -- but the
  mechanism exists so a future justified exception is one reviewed line,
  not a disabled rule.

All output is sorted on (path, line, rule, message) and serialized with
sorted keys, so reports are byte-identical across ``PYTHONHASHSEED``.
"""

from __future__ import annotations

import ast
import json
import re
from pathlib import Path

from ..violations import Violation

__all__ = [
    "PRAGMA", "allowed_tags", "suppressed", "filter_pragmas",
    "load_baseline", "apply_baseline", "default_baseline_path",
    "render_jsonl", "sort_violations",
]

PRAGMA = re.compile(r"det:\s*allow\[([^\]]*)\]")


def allowed_tags(rule: str) -> frozenset[str]:
    """Pragma tags that suppress ``rule`` (e.g. GATE001)."""
    family = rule.rstrip("0123456789").lower()
    return frozenset({rule.lower(), family, "deep", "*"})


def suppressed(violation: Violation, source_lines: list[str]) -> bool:
    if not (1 <= violation.line <= len(source_lines)):
        return False
    match = PRAGMA.search(source_lines[violation.line - 1])
    if match is None:
        return False
    tags = {t.strip().lower() for t in match.group(1).split(",")}
    return bool(tags & allowed_tags(violation.rule))


def filter_pragmas(violations: list[Violation],
                   source: str) -> list[Violation]:
    lines = source.splitlines()
    return [v for v in violations if not suppressed(v, lines)]


def sort_violations(violations: list[Violation]) -> list[Violation]:
    return sorted(set(violations),
                  key=lambda v: (v.path, v.line, v.rule, v.message))


def default_baseline_path(root: Path) -> Path:
    """``deep-baseline.txt`` at the repo root for the canonical
    ``src/repro`` layout, else next to the analyzed tree."""
    root = root.resolve()
    if root.name == "repro" and root.parent.name == "src":
        return root.parent.parent / "deep-baseline.txt"
    return root / "deep-baseline.txt"


def load_baseline(path: Path) -> frozenset[str]:
    """Rendered finding lines accepted as pre-existing."""
    if not path.exists():
        return frozenset()
    entries = set()
    for line in path.read_text().splitlines():
        line = line.strip()
        if line and not line.startswith("#"):
            entries.add(line)
    return frozenset(entries)


def apply_baseline(violations: list[Violation],
                   baseline: frozenset[str]) -> list[Violation]:
    return [v for v in violations if str(v) not in baseline]


def render_jsonl(violations: list[Violation]) -> str:
    """One JSON object per finding, keys sorted -- byte-stable."""
    lines = []
    for v in sort_violations(violations):
        lines.append(json.dumps(
            {"rule": v.rule, "path": v.path, "line": v.line,
             "message": v.message, "pass": v.pass_name},
            sort_keys=True))
    return "\n".join(lines)


def parse_module(source: str, path: str) -> ast.Module:
    return ast.parse(source, filename=path)
