"""Shared violation record for all three analysis passes.

Every pass -- the determinism linter, the state-machine checker, and the
runtime invariant verifier -- reports findings as :class:`Violation`
records so the CLI, pytest suite, and CI gate can treat them uniformly.

Rule-code namespaces:

* ``DET0xx`` -- determinism linter (:mod:`repro.analysis.determinism`);
* ``SM0xx``  -- state-machine checker (:mod:`repro.analysis.statemachine`);
* ``INV0xx`` -- runtime invariant verifier (:mod:`repro.analysis.invariants`).
"""

from __future__ import annotations

import dataclasses
from typing import Iterable

__all__ = ["Violation", "render_report"]


@dataclasses.dataclass(frozen=True)
class Violation:
    """One finding from an analysis pass."""

    rule: str            # e.g. "DET001"
    path: str            # file (or logical object) the finding is anchored to
    line: int            # 1-based line, or 0 when not file-anchored
    message: str
    pass_name: str       # "determinism" | "state-machine" | "invariants"

    def __str__(self) -> str:
        where = f"{self.path}:{self.line}" if self.line else self.path
        return f"{where}: {self.rule} {self.message}"


def render_report(violations: Iterable[Violation]) -> str:
    """Human-readable report, stably ordered for reproducible output."""
    ordered = sorted(violations,
                     key=lambda v: (v.pass_name, v.path, v.line, v.rule))
    if not ordered:
        return "repro.analysis: 0 violations"
    lines = [str(v) for v in ordered]
    lines.append(f"repro.analysis: {len(ordered)} violation(s)")
    return "\n".join(lines)
