"""Per-request waterfall rendering for the ``repro trace`` CLI.

A waterfall shows one trace id's lifetime: every span as an offset +
duration bar, every point event as a tick, in timeline order -- the
request's path through admission, routing, binding, the splice state
machine, and (when things go wrong) the shed/retry/breaker decisions that
explain its fate.
"""

from __future__ import annotations

__all__ = ["render_waterfall", "pick_waterfall_trace"]


def _bar(start: float, end: float, t0: float, t1: float,
         width: int) -> str:
    """An ASCII interval bar positioned inside [t0, t1]."""
    window = t1 - t0
    if window <= 0:
        return "#" * width
    a = int((start - t0) / window * (width - 1))
    b = int((end - t0) / window * (width - 1))
    a = min(max(a, 0), width - 1)
    b = min(max(b, a), width - 1)
    return " " * a + "#" * (b - a + 1)


def render_waterfall(tracer, trace_id: int, width: int = 32) -> str:
    """Render one request's spans and events as a text waterfall."""
    spans = [s for s in tracer.spans if s.trace_id == trace_id]
    points = [e for e in tracer.events
              if e.trace_id == trace_id and not e.phase]
    if not spans and not points:
        return f"trace #{trace_id}: no records"
    t0 = min([s.start for s in spans] + [e.t for e in points])
    t1 = max([s.end if s.end is not None else s.start for s in spans] +
             [e.t for e in points])
    rows = []
    for span in spans:
        end = span.end if span.end is not None else span.start
        label = f"{span.kind}/{span.name}"
        status = span.status or ("open" if span.open else "")
        attrs = " ".join(f"{k}={span.attrs[k]}" for k in sorted(span.attrs)
                         if k != "span")
        detail = " ".join(x for x in (status, attrs) if x)
        rows.append((span.start, 0, span.span_id,
                     f"{(span.start - t0) * 1000:9.3f} "
                     f"{(end - span.start) * 1000:9.3f} "
                     f"{_bar(span.start, end, t0, t1, width):<{width}} "
                     f"{label:<26} {detail}".rstrip()))
    for event in points:
        label = f"{event.kind}/{event.name}"
        attrs = " ".join(f"{k}={event.attrs[k]}"
                         for k in sorted(event.attrs))
        offset = int((event.t - t0) / (t1 - t0) * (width - 1)) \
            if t1 > t0 else 0
        tick = " " * min(max(offset, 0), width - 1) + "|"
        rows.append((event.t, 1, event.seq,
                     f"{(event.t - t0) * 1000:9.3f} {'':9} "
                     f"{tick:<{width}} {label:<26} {attrs}".rstrip()))
    rows.sort(key=lambda r: (r[0], r[1], r[2]))
    header = (f"trace #{trace_id}: t0={t0:.6f}s "
              f"span={1000 * (t1 - t0):.3f}ms\n"
              f"{'off ms':>9} {'dur ms':>9} {'timeline':<{width}} "
              f"{'kind/name':<26} detail")
    return header + "\n" + "\n".join(r[3] for r in rows)


def pick_waterfall_trace(tracer):
    """The default trace for the CLI: the one with the most records (ties
    broken toward the earliest id), i.e. the most eventful request.
    ``None`` when the tracer holds no per-request records."""
    counts: dict[int, int] = {}
    for event in tracer.events:
        if event.trace_id is not None:
            counts[event.trace_id] = counts.get(event.trace_id, 0) + 1
    if not counts:
        return None
    return min(sorted(counts), key=lambda tid: (-counts[tid], tid))
