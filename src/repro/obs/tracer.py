"""The tracer: deterministic structured spans and point events.

Every record is keyed by *simulation time* and a monotonically assigned
trace / span / sequence id -- never the wall clock, never ``id()`` -- so a
trace is a pure function of the seed: same seed, byte-identical JSONL,
regardless of ``PYTHONHASHSEED``.  The tracer is strictly passive: it
appends Python objects to lists and never creates simulation events, so
enabling it cannot perturb the event sequence it observes.

Two record shapes:

* a :class:`Span` covers an interval (one request end to end, one agent
  dispatch round trip, one pipeline stage inside a request) and carries a
  terminal ``status``;
* a :class:`TraceEvent` marks a point (a shed decision, a breaker
  transition, a splice-state change) and, when it is a decision, carries a
  machine-readable ``reason`` in its attrs.

Components hold an ``Optional[Tracer]`` and guard every record with
``if tracer is not None`` -- the same zero-overhead-when-off contract as
``overload=None`` on the front end.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Optional

from .recorder import FlightRecorder

__all__ = ["TraceEvent", "Span", "Tracer"]


@dataclasses.dataclass(slots=True)
class TraceEvent:
    """One point on the timeline.

    ``phase`` is ``""`` for a point event, ``"B"``/``"E"`` for the begin/
    end marks a :class:`Span` leaves on the timeline (so the flight
    recorder shows span boundaries in event order).
    """

    seq: int
    t: float
    kind: str
    name: str
    trace_id: Optional[int] = None
    node: Optional[str] = None
    phase: str = ""
    attrs: dict = dataclasses.field(default_factory=dict)

    def to_dict(self) -> dict:
        out: dict = {"kind": self.kind, "name": self.name,
                     "seq": self.seq, "t": round(self.t, 9)}
        if self.trace_id is not None:
            out["trace"] = self.trace_id
        if self.node is not None:
            out["node"] = self.node
        if self.phase:
            out["phase"] = self.phase
        if self.attrs:
            out["attrs"] = {k: self.attrs[k] for k in sorted(self.attrs)}
        return out


@dataclasses.dataclass(slots=True)
class Span:
    """One interval on the timeline with a terminal status."""

    span_id: int
    kind: str
    name: str
    start: float
    trace_id: Optional[int] = None
    node: Optional[str] = None
    end: Optional[float] = None
    status: str = ""
    attrs: dict = dataclasses.field(default_factory=dict)

    @property
    def open(self) -> bool:
        return self.end is None

    @property
    def duration(self) -> Optional[float]:
        return None if self.end is None else self.end - self.start

    def to_dict(self) -> dict:
        out: dict = {"kind": self.kind, "name": self.name,
                     "span": self.span_id, "start": round(self.start, 9)}
        if self.trace_id is not None:
            out["trace"] = self.trace_id
        if self.node is not None:
            out["node"] = self.node
        if self.end is not None:
            out["end"] = round(self.end, 9)
        out["status"] = self.status
        if self.attrs:
            out["attrs"] = {k: self.attrs[k] for k in sorted(self.attrs)}
        return out


class Tracer:
    """Records spans and events against a simulator's clock.

    One tracer serves a whole deployment; every instrumented component
    (front ends, pools, breakers, controller, monitor, HA pair, chaos
    schedule) shares it so the timeline interleaves both planes.  All id
    counters are *instance* state -- two tracers never share a sequence,
    and a fresh deployment always numbers from 1.
    """

    def __init__(self, sim, ring: int = 512):
        self.sim = sim
        self.events: list[TraceEvent] = []
        self.spans: list[Span] = []
        self.recorder = FlightRecorder(capacity=ring)
        self._seq = itertools.count(1)
        self._trace_ids = itertools.count(1)
        self._span_ids = itertools.count(1)

    # -- ids ----------------------------------------------------------------
    def new_trace(self) -> int:
        """Allocate the next request-scoped trace id."""
        return next(self._trace_ids)

    # -- recording ----------------------------------------------------------
    def point(self, kind: str, name: str, trace_id: Optional[int] = None,
              node: Optional[str] = None, **attrs) -> TraceEvent:
        """Record one point event at the current simulation time."""
        event = TraceEvent(seq=next(self._seq), t=self.sim.now, kind=kind,
                           name=name, trace_id=trace_id, node=node,
                           attrs=attrs)
        self.events.append(event)
        self.recorder.record(event)
        return event

    def begin(self, kind: str, name: str, trace_id: Optional[int] = None,
              node: Optional[str] = None, **attrs) -> Span:
        """Open a span; pair with :meth:`end`."""
        span = Span(span_id=next(self._span_ids), kind=kind, name=name,
                    start=self.sim.now, trace_id=trace_id, node=node,
                    attrs=attrs)
        self.spans.append(span)
        event = TraceEvent(seq=next(self._seq), t=span.start, kind=kind,
                           name=name, trace_id=trace_id, node=node,
                           phase="B", attrs={"span": span.span_id})
        self.events.append(event)
        self.recorder.record(event)
        return span

    def end(self, span: Span, status: str = "ok", **attrs) -> None:
        """Close a span with its terminal status (idempotence unchecked:
        closing twice is a caller bug and raises)."""
        if span.end is not None:
            raise ValueError(f"span {span.span_id} already ended")
        span.end = self.sim.now
        span.status = status
        span.attrs.update(attrs)
        mark = dict(attrs)
        mark["span"] = span.span_id
        mark["status"] = status
        event = TraceEvent(seq=next(self._seq), t=span.end, kind=span.kind,
                           name=span.name, trace_id=span.trace_id,
                           node=span.node, phase="E", attrs=mark)
        self.events.append(event)
        self.recorder.record(event)

    # -- queries --------------------------------------------------------------
    def find_events(self, kind: Optional[str] = None,
                    name: Optional[str] = None,
                    trace_id: Optional[int] = None,
                    node: Optional[str] = None,
                    points_only: bool = False) -> list[TraceEvent]:
        """Filter the event log (None = wildcard)."""
        return [e for e in self.events
                if (kind is None or e.kind == kind)
                and (name is None or e.name == name)
                and (trace_id is None or e.trace_id == trace_id)
                and (node is None or e.node == node)
                and (not points_only or not e.phase)]

    def find_spans(self, kind: Optional[str] = None,
                   name: Optional[str] = None,
                   trace_id: Optional[int] = None,
                   status: Optional[str] = None) -> list[Span]:
        """Filter the span log (None = wildcard)."""
        return [s for s in self.spans
                if (kind is None or s.kind == kind)
                and (name is None or s.name == name)
                and (trace_id is None or s.trace_id == trace_id)
                and (status is None or s.status == status)]

    def trace_ids(self) -> list[int]:
        """Every allocated trace id that recorded at least one event."""
        seen: dict[int, None] = {}
        for event in self.events:
            if event.trace_id is not None:
                seen[event.trace_id] = None
        return sorted(seen)
