"""TraceSummary: the aggregation experiments assert against.

Collapses a tracer's raw logs into sorted-key counts and per-stage latency
totals: span counts/durations by ``kind/name``, request-span terminal
statuses, point-event counts by ``kind/name``, and decision ``reason``
counts.  Everything an experiment pins (and the golden fixture records) is
an integer count; durations are included for reports but rounded so the
dict is JSON-stable.
"""

from __future__ import annotations

__all__ = ["TraceSummary"]


class TraceSummary:
    """Aggregated view of one tracer's spans and events."""

    def __init__(self, spans: dict, events: dict, statuses: dict,
                 reasons: dict, open_spans: int):
        #: ``kind/name`` -> {count, total_s, mean_s} over *completed* spans
        self.spans = spans
        #: ``kind/name`` -> count over point events (span marks excluded)
        self.events = events
        #: terminal status -> count over completed request spans
        self.statuses = statuses
        #: ``kind/reason`` -> count over point events carrying a reason
        self.reasons = reasons
        #: spans never closed (a crash mid-request, or a harness bug)
        self.open_spans = open_spans

    @classmethod
    def from_tracer(cls, tracer) -> "TraceSummary":
        spans: dict = {}
        statuses: dict = {}
        open_spans = 0
        for span in tracer.spans:
            if span.end is None:
                open_spans += 1
                continue
            key = f"{span.kind}/{span.name}" if span.kind != "request" \
                else "request"
            agg = spans.setdefault(key, {"count": 0, "total_s": 0.0})
            agg["count"] += 1
            agg["total_s"] += span.end - span.start
            if span.kind == "request":
                statuses[span.status] = statuses.get(span.status, 0) + 1
        for agg in spans.values():
            agg["total_s"] = round(agg["total_s"], 9)
            agg["mean_s"] = round(agg["total_s"] / agg["count"], 9)
        events: dict = {}
        reasons: dict = {}
        for event in tracer.events:
            if event.phase:
                continue
            key = f"{event.kind}/{event.name}"
            events[key] = events.get(key, 0) + 1
            reason = event.attrs.get("reason")
            if reason is not None:
                rkey = f"{event.kind}/{reason}"
                reasons[rkey] = reasons.get(rkey, 0) + 1
        return cls(spans=spans, events=events, statuses=statuses,
                   reasons=reasons, open_spans=open_spans)

    def to_dict(self) -> dict:
        """Sorted-key, JSON-stable dict (the golden-fixture surface)."""
        return {
            "events": {k: self.events[k] for k in sorted(self.events)},
            "open_spans": self.open_spans,
            "reasons": {k: self.reasons[k] for k in sorted(self.reasons)},
            "spans": {k: dict(sorted(self.spans[k].items()))
                      for k in sorted(self.spans)},
            "statuses": {k: self.statuses[k]
                         for k in sorted(self.statuses)},
        }

    def counts(self) -> dict:
        """Counts only -- the additive golden-metrics section."""
        return {
            "events": {k: self.events[k] for k in sorted(self.events)},
            "open_spans": self.open_spans,
            "reasons": {k: self.reasons[k] for k in sorted(self.reasons)},
            "spans": {k: self.spans[k]["count"] for k in sorted(self.spans)},
            "statuses": {k: self.statuses[k]
                         for k in sorted(self.statuses)},
        }

    def render(self) -> str:
        """A readable per-stage breakdown for the CLI."""
        lines = ["trace summary:",
                 f"  {'span kind/name':<28} {'count':>7} {'total s':>10} "
                 f"{'mean ms':>9}"]
        for key in sorted(self.spans):
            agg = self.spans[key]
            lines.append(f"  {key:<28} {agg['count']:>7} "
                         f"{agg['total_s']:>10.4f} "
                         f"{agg['mean_s'] * 1000:>9.3f}")
        if self.open_spans:
            lines.append(f"  (open spans: {self.open_spans})")
        lines.append(f"  {'event kind/name':<28} {'count':>7}")
        for key in sorted(self.events):
            lines.append(f"  {key:<28} {self.events[key]:>7}")
        if self.statuses:
            statuses = " ".join(f"{k}={self.statuses[k]}"
                                for k in sorted(self.statuses))
            lines.append(f"  request statuses: {statuses}")
        if self.reasons:
            reasons = " ".join(f"{k}={self.reasons[k]}"
                               for k in sorted(self.reasons))
            lines.append(f"  decision reasons: {reasons}")
        return "\n".join(lines)
