"""Trace exporters: JSONL and Chrome trace-event format.

Both exports are deterministic text: records come out in sequence order,
dict keys are emitted sorted, and floats are plain ``repr`` -- the
determinism tests compare the JSONL byte for byte across runs and
``PYTHONHASHSEED`` values.
"""

from __future__ import annotations

import json

__all__ = ["to_jsonl", "to_chrome_trace"]


def to_jsonl(tracer) -> str:
    """One JSON object per line: every event (in seq order), then every
    span (in span-id order).  Events carry ``"rec": "event"``, spans
    ``"rec": "span"``, so a consumer can split the stream back apart."""
    lines = []
    for event in tracer.events:
        record = {"rec": "event"}
        record.update(event.to_dict())
        lines.append(json.dumps(record, sort_keys=True))
    for span in tracer.spans:
        record = {"rec": "span"}
        record.update(span.to_dict())
        lines.append(json.dumps(record, sort_keys=True))
    return "\n".join(lines) + ("\n" if lines else "")


def _tid_map(tracer) -> dict:
    """Stable node -> Chrome thread-id mapping (sorted node names)."""
    names = sorted({e.node for e in tracer.events if e.node is not None})
    return {name: idx + 1 for idx, name in enumerate(names)}


def to_chrome_trace(tracer) -> str:
    """The ``chrome://tracing`` / Perfetto JSON array format.

    Completed spans become ``ph="X"`` complete events; point events become
    ``ph="i"`` instants.  Sim-time is exported in microseconds (the
    format's unit); each node renders as its own thread row.
    """
    tids = _tid_map(tracer)
    records = []
    for span in tracer.spans:
        if span.end is None:
            continue
        args = {k: span.attrs[k] for k in sorted(span.attrs)}
        args["status"] = span.status
        if span.trace_id is not None:
            args["trace"] = span.trace_id
        records.append({
            "name": f"{span.kind}/{span.name}",
            "cat": span.kind,
            "ph": "X",
            "ts": round(span.start * 1e6, 3),
            "dur": round((span.end - span.start) * 1e6, 3),
            "pid": 1,
            "tid": tids.get(span.node, 0),
            "args": args,
        })
    for event in tracer.events:
        if event.phase:
            continue
        args = {k: event.attrs[k] for k in sorted(event.attrs)}
        if event.trace_id is not None:
            args["trace"] = event.trace_id
        records.append({
            "name": f"{event.kind}/{event.name}",
            "cat": event.kind,
            "ph": "i",
            "s": "t",
            "ts": round(event.t * 1e6, 3),
            "pid": 1,
            "tid": tids.get(event.node, 0),
            "args": args,
        })
    records.sort(key=lambda r: (r["ts"], r["tid"], r["name"]))
    return json.dumps({"traceEvents": records,
                       "displayTimeUnit": "ms"}, sort_keys=True)
