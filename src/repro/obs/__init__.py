"""repro.obs -- deterministic tracing and the flight recorder.

The observability backbone for the reproduction: structured spans + point
events keyed by sim-time and monotone ids (:mod:`~repro.obs.tracer`), a
bounded last-N ring dumped on invariant/chaos failures
(:mod:`~repro.obs.recorder`), JSONL / Chrome trace-event exporters
(:mod:`~repro.obs.export`), the aggregation experiments assert against
(:mod:`~repro.obs.summary`), and the per-request waterfall renderer
(:mod:`~repro.obs.waterfall`).  The continuous-telemetry plane adds
scheduler introspection + windowed time-series with JSONL/Prometheus
exporters (:mod:`~repro.obs.telemetry`), declarative SLO evaluation
(:mod:`~repro.obs.slo`), and cProfile subsystem attribution
(:mod:`~repro.obs.profile`).

Everything here obeys the repository's determinism contract: no wall
clock, no global RNG, sorted iteration everywhere -- the
``repro.analysis`` linter covers this package like any other.
"""

from .export import to_chrome_trace, to_jsonl
from .profile import attribute_profile, classify_path, peak_rss_kb
from .recorder import FlightRecorder, format_event
from .slo import (DEFAULT_CHAOS_SLOS, DEFAULT_OVERLOAD_SLOS, SloSpec,
                  evaluate_slos, slo_metrics_from_rig)
from .summary import TraceSummary
from .telemetry import (KernelStats, TelemetrySampler, TelemetryWindow,
                        render_top, render_windows, telemetry_to_jsonl,
                        telemetry_to_prometheus)
from .tracer import Span, TraceEvent, Tracer
from .waterfall import pick_waterfall_trace, render_waterfall

__all__ = [
    "Tracer", "TraceEvent", "Span",
    "FlightRecorder", "format_event",
    "to_jsonl", "to_chrome_trace",
    "TraceSummary",
    "render_waterfall", "pick_waterfall_trace",
    "KernelStats", "TelemetrySampler", "TelemetryWindow",
    "telemetry_to_jsonl", "telemetry_to_prometheus",
    "render_top", "render_windows",
    "attribute_profile", "classify_path", "peak_rss_kb",
    "SloSpec", "evaluate_slos", "slo_metrics_from_rig",
    "DEFAULT_OVERLOAD_SLOS", "DEFAULT_CHAOS_SLOS",
]
