"""repro.obs -- deterministic tracing and the flight recorder.

The observability backbone for the reproduction: structured spans + point
events keyed by sim-time and monotone ids (:mod:`~repro.obs.tracer`), a
bounded last-N ring dumped on invariant/chaos failures
(:mod:`~repro.obs.recorder`), JSONL / Chrome trace-event exporters
(:mod:`~repro.obs.export`), the aggregation experiments assert against
(:mod:`~repro.obs.summary`), and the per-request waterfall renderer
(:mod:`~repro.obs.waterfall`).

Everything here obeys the repository's determinism contract: no wall
clock, no global RNG, sorted iteration everywhere -- the
``repro.analysis`` linter covers this package like any other.
"""

from .export import to_chrome_trace, to_jsonl
from .recorder import FlightRecorder, format_event
from .summary import TraceSummary
from .tracer import Span, TraceEvent, Tracer
from .waterfall import pick_waterfall_trace, render_waterfall

__all__ = [
    "Tracer", "TraceEvent", "Span",
    "FlightRecorder", "format_event",
    "to_jsonl", "to_chrome_trace",
    "TraceSummary",
    "render_waterfall", "pick_waterfall_trace",
]
