"""Declarative service-level objectives evaluated against telemetry.

An :class:`SloSpec` names one objective: a metric, a comparison, and a
threshold.  ``scope="episode"`` checks a whole-run scalar (p99 latency,
error rate, shed rate); ``scope="window_max"`` / ``"window_min"`` check
the extreme of a per-window telemetry series, so a burst that a run-level
average would hide still fails the objective.

Evaluation is pure: specs in, ``{name, metric, value, ok, ...}`` dicts
out, sorted nowhere because the caller's spec order is meaningful (it is
reported in that order).  A metric with no data evaluates to ``ok=True``
with ``value=None`` -- an objective over an empty series is vacuous, not
failed -- and carries ``evaluated=False`` so reports can tell the cases
apart.

Default spec tuples for the overload and chaos episodes live here so the
CLI, the sweep targets, and the golden fixtures all check the same
objectives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

__all__ = ["SloSpec", "evaluate_slos", "slo_metrics_from_rig",
           "DEFAULT_OVERLOAD_SLOS", "DEFAULT_CHAOS_SLOS"]

_OPS = {
    "<=": lambda v, t: v <= t,
    "<": lambda v, t: v < t,
    ">=": lambda v, t: v >= t,
    ">": lambda v, t: v > t,
}


@dataclass(frozen=True)
class SloSpec:
    """One declarative objective: ``metric op threshold``."""

    name: str
    metric: str
    threshold: float
    op: str = "<="
    scope: str = "episode"  # "episode" | "window_max" | "window_min"
    description: str = ""

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ValueError(f"unknown SLO comparison {self.op!r}")
        if self.scope not in ("episode", "window_max", "window_min"):
            raise ValueError(f"unknown SLO scope {self.scope!r}")

    def check(self, value: float) -> bool:
        return _OPS[self.op](value, self.threshold)


def slo_metrics_from_rig(rig: Any, shed: int = 0) -> dict:
    """Episode-scope metrics from a WebBench rig's collectors.

    ``error_rate`` is client-visible failures over client-visible
    outcomes; ``shed_rate`` counts admission sheds over the same base
    (sheds surface to clients as errors, so shed <= error in practice).
    """
    total = rig.meter.completions + rig.errors
    latency = rig.latency
    return {
        "latency_p99_s": latency.percentile(99) if latency.total else 0.0,
        "error_rate": rig.errors / total if total else 0.0,
        "shed_rate": shed / total if total else 0.0,
    }


def evaluate_slos(specs: Any, metrics: dict,
                  sampler: Optional[Any] = None) -> list[dict]:
    """Check every spec; returns one result dict per spec, in order.

    ``metrics`` supplies episode-scope values; window-scope specs read
    the named series from ``sampler`` (a
    :class:`~repro.obs.telemetry.TelemetrySampler`).
    """
    results = []
    for spec in specs:
        value: Optional[float] = None
        if spec.scope == "episode":
            value = metrics.get(spec.metric)
        elif sampler is not None:
            try:
                series = sampler.series(spec.metric)
            except KeyError:
                series = []
            if series:
                value = max(series) if spec.scope == "window_max" \
                    else min(series)
        evaluated = value is not None
        results.append({
            "name": spec.name,
            "metric": spec.metric,
            "op": spec.op,
            "threshold": spec.threshold,
            "scope": spec.scope,
            "value": round(value, 9) if evaluated else None,
            "evaluated": evaluated,
            "ok": spec.check(value) if evaluated else True,
        })
    return results


#: objectives for the flash-crowd overload episode: with admission
#: control + breakers active, served latency stays bounded and the
#: system degrades by shedding (bounded) rather than queueing (unbounded)
DEFAULT_OVERLOAD_SLOS = (
    SloSpec("served_p99", "latency_p99_s", 1.5,
            description="served requests stay under 1.5s p99 in the crowd"),
    SloSpec("error_budget", "error_rate", 0.25,
            description="client-visible failures bounded at 4x overload"),
    SloSpec("shed_budget", "shed_rate", 0.2,
            description="admission sheds bounded at 4x overload"),
)

#: objectives for chaos episodes: faults are injected on purpose, so the
#: budgets are loose -- the objective is "survives with bounded damage",
#: not "unaffected"
DEFAULT_CHAOS_SLOS = (
    SloSpec("served_p99", "latency_p99_s", 5.0,
            description="faulted runs still complete requests in bounded time"),
    SloSpec("error_budget", "error_rate", 0.5,
            description="most requests succeed under every fault schedule"),
)
