"""Continuous telemetry: scheduler introspection + windowed time-series.

Two observers complement the per-request tracer:

``KernelStats``
    Scheduler introspection.  Installed via ``Simulator(kernel_stats=...)``
    (or :meth:`KernelStats.attach`), it counts scheduled / fired /
    cancelled events per event class, tracks the event-heap high-water
    mark and the hot-timeout pool recycling rate, and -- with
    ``callsites=True`` -- attributes every enqueue to the subsystem
    call site that scheduled it (a ``sys._getframe`` walk, so it costs
    real time and is off by default).  The fast-path layers (lan / cpu /
    disk) also report hit/fallback counts here.

``TelemetrySampler``
    A fixed-window time-series sampler.  It is driven from
    ``Simulator.step`` -- *never* by scheduled events -- so enabling it
    cannot change ``event_count`` or the timeline: a window closes when
    the first event fires at or after its edge (that event counts toward
    the next window).  Registered probes are read-only callables sampled
    at window close: gauges (instantaneous values such as utilization or
    breaker state) and cumulative sources (monotone counts such as
    completed requests, exported per window as deltas).

Both observers obey the zero-perturbation contract of the tracer: they
never create events, never mutate observed structures, and their
deterministic exports (sorted-key JSONL, Prometheus text format) are
byte-identical across runs and ``PYTHONHASHSEED`` values.  Host-side
quantities (peak RSS) are kept out of the deterministic exports and only
appear in human-facing renderings and bench reports.
"""

from __future__ import annotations

import json
import re
import sys
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from .profile import classify_path, peak_rss_kb

__all__ = [
    "KernelStats",
    "TelemetryWindow",
    "TelemetrySampler",
    "telemetry_to_jsonl",
    "telemetry_to_prometheus",
    "render_top",
    "render_windows",
]


def _round(x: float) -> float:
    """Stabilize float formatting in exports (pure cosmetics: the values
    themselves are already deterministic)."""
    return round(x, 9)


def _is_engine_file(filename: str) -> bool:
    return filename.replace("\\", "/").endswith("repro/sim/engine.py")


_THIS_FILE = __file__


class KernelStats:
    """Passive scheduler introspection; see the module docstring.

    All counter structures are plain dicts keyed by event-class name,
    call-site label, or fast-path layer name -- reports iterate them
    sorted, so the output is hash-seed independent.
    """

    def __init__(self, callsites: bool = False):
        #: whether enqueues are attributed to their scheduling call site
        self.callsites_enabled = callsites
        self.scheduled: dict[str, int] = {}
        self.fired: dict[str, int] = {}
        self.cancelled: dict[str, int] = {}
        self.callsites: dict[str, int] = {}
        self.heap_high_water = 0
        self.pool_hits = 0
        self.pool_misses = 0
        #: per-layer fast-path decisions: layer -> [hits, fallbacks]
        self.fast_path: dict[str, list[int]] = {}
        #: same-timestamp dispatch batches (calendar queue only)
        self.batches = 0
        self.batched_events = 0
        self.max_batch = 0

    def attach(self, sim: Any) -> "KernelStats":
        sim.kernel_stats = self
        return self

    # -- engine hooks (called from repro.sim.engine, duck-typed) ----------
    def on_scheduled(self, event: Any, heap_depth: int) -> None:
        name = type(event).__name__
        self.scheduled[name] = self.scheduled.get(name, 0) + 1
        if heap_depth > self.heap_high_water:
            self.heap_high_water = heap_depth
        if self.callsites_enabled:
            site = self._callsite()
            self.callsites[site] = self.callsites.get(site, 0) + 1

    def on_fired(self, event: Any) -> None:
        name = type(event).__name__
        self.fired[name] = self.fired.get(name, 0) + 1

    def on_cancelled(self, event: Any) -> None:
        name = type(event).__name__
        self.cancelled[name] = self.cancelled.get(name, 0) + 1

    def on_pool_recycle(self, hit: bool) -> None:
        if hit:
            self.pool_hits += 1
        else:
            self.pool_misses += 1

    def on_batch(self, size: int) -> None:
        self.batches += 1
        self.batched_events += size
        if size > self.max_batch:
            self.max_batch = size

    def on_fast_path(self, layer: str, hit: bool) -> None:
        entry = self.fast_path.setdefault(layer, [0, 0])
        entry[0 if hit else 1] += 1

    # -- attribution ------------------------------------------------------
    def _callsite(self) -> str:
        """The nearest non-kernel frame that caused this enqueue.

        Engine-internal frames are skipped so a ``yield sim.timeout(...)``
        inside a subsystem generator is attributed to that generator, not
        to ``Timeout.__init__``.  Enqueues originating from the dispatch
        loop itself (process completions, immediate resumes) are labelled
        ``sim:engine.dispatch``.
        """
        frame = sys._getframe(1)
        while frame is not None:
            code = frame.f_code
            filename = code.co_filename
            if filename == _THIS_FILE:
                frame = frame.f_back
                continue
            if _is_engine_file(filename):
                if code.co_name in ("step", "run"):
                    return "sim:engine.dispatch"
                frame = frame.f_back
                continue
            leaf = filename.replace("\\", "/").rsplit("/", 1)[-1]
            stem = leaf[:-3] if leaf.endswith(".py") else leaf
            return f"{classify_path(filename)}:{stem}.{code.co_name}"
        return "sim:engine.dispatch"  # pragma: no cover - frame walk ended

    # -- reporting --------------------------------------------------------
    @property
    def recycle_rate(self) -> float:
        """Fraction of hot timeouts served from the recycling pool."""
        total = self.pool_hits + self.pool_misses
        return self.pool_hits / total if total else 0.0

    @staticmethod
    def _top(table: dict[str, int], n: int) -> list[list]:
        ranked = sorted(table.items(), key=lambda kv: (-kv[1], kv[0]))
        return [[name, count] for name, count in ranked[:n]]

    def report(self, top: int = 10) -> dict:
        """A JSON-ready summary: totals, top event classes / call sites,
        pool and fast-path efficiency.  Sorted everywhere."""
        out: dict[str, Any] = {
            "scheduled_total": sum(self.scheduled.values()),
            "fired_total": sum(self.fired.values()),
            "cancelled_total": sum(self.cancelled.values()),
            "heap_high_water": self.heap_high_water,
            "pool": {
                "hits": self.pool_hits,
                "misses": self.pool_misses,
                "recycle_rate": round(self.recycle_rate, 4),
            },
            "event_classes": self._top(self.scheduled, top),
            "batch_dispatch": {
                "batches": self.batches,
                "events": self.batched_events,
                "max": self.max_batch,
                "avg": round(self.batched_events / self.batches, 2)
                if self.batches else 0.0,
            },
            "fast_path": {
                layer: {"hits": counts[0], "fallbacks": counts[1]}
                for layer, counts in sorted(self.fast_path.items())
            },
        }
        if self.callsites_enabled:
            out["callsites"] = self._top(self.callsites, top)
        return out


@dataclass
class TelemetryWindow:
    """One closed sampling window ``[start, end)``."""

    index: int
    start: float
    end: float
    events: int
    gauges: dict[str, float]
    deltas: dict[str, float]
    #: host-side process high-water RSS at close (0 unless ``host_rss``);
    #: excluded from deterministic exports
    rss_kb: int = 0

    @property
    def span(self) -> float:
        return self.end - self.start

    @property
    def events_per_sec(self) -> float:
        # a finalize() tail can be zero-width up to float residue; a rate
        # over such a span is meaningless noise, so clamp it to zero
        return self.events / self.span if self.span > 1e-9 else 0.0

    def to_dict(self, include_host: bool = False) -> dict:
        out: dict[str, Any] = {
            "index": self.index,
            "start": _round(self.start),
            "end": _round(self.end),
            "events": self.events,
            "events_per_sec": _round(self.events_per_sec),
            "gauges": self.gauges,
            "deltas": self.deltas,
        }
        if include_host:
            out["rss_kb"] = self.rss_kb
        return out


class TelemetrySampler:
    """Fixed-window time-series over read-only probes (module docstring).

    The ring keeps the last ``ring`` windows; older windows are dropped
    (counted in ``dropped``) so a long run has bounded memory.  Summary
    totals are computed from the live cumulative sources, not the ring,
    so they cover the whole run even after windows age out.
    """

    def __init__(self, window: float = 0.5, ring: int = 256,
                 host_rss: bool = False):
        if window <= 0:
            raise ValueError(f"window must be positive, got {window!r}")
        if ring < 1:
            raise ValueError(f"ring must be >= 1, got {ring!r}")
        self.window = window
        self.ring = ring
        self.host_rss = host_rss
        self.windows: list[TelemetryWindow] = []
        self.dropped = 0
        self.events_total = 0
        self._gauges: dict[str, Callable[[], float]] = {}
        self._cums: dict[str, Callable[[], float]] = {}
        self._base: dict[str, float] = {}
        self._initial: dict[str, float] = {}
        self._events_in_window = 0
        self._index = 0
        self._start = 0.0
        self._next_edge = window
        self._finalized = False

    def attach(self, sim: Any) -> "TelemetrySampler":
        sim.telemetry = self
        self._start = sim.now
        self._next_edge = sim.now + self.window
        return self

    # -- probe registration ----------------------------------------------
    def add_gauge(self, name: str, fn: Callable[[], float]) -> None:
        """Register an instantaneous read-only probe, sampled at close."""
        if name in self._gauges or name in self._cums:
            raise ValueError(f"duplicate telemetry source {name!r}")
        self._gauges[name] = fn

    def add_cumulative(self, name: str, fn: Callable[[], float]) -> None:
        """Register a monotone source; windows export its per-window delta."""
        if name in self._gauges or name in self._cums:
            raise ValueError(f"duplicate telemetry source {name!r}")
        self._cums[name] = fn
        value = float(fn())
        self._base[name] = value
        self._initial[name] = value

    # -- engine hook (called from Simulator.step, duck-typed) -------------
    def on_event(self, now: float) -> None:
        if now >= self._next_edge:
            self._close_through(now)
        self._events_in_window += 1
        self.events_total += 1

    def finalize(self, now: float) -> None:
        """Close every complete window up to ``now`` plus the partial tail.

        Idempotent; harnesses call it once after the run so the last
        window is never silently missing from exports.
        """
        if self._finalized:
            return
        self._close_through(now)
        if now > self._start or self._events_in_window:
            self._close_window(now)
        self._finalized = True

    # -- window mechanics --------------------------------------------------
    def _close_through(self, now: float) -> None:
        while self._next_edge <= now:
            self._close_window(self._next_edge)

    def _close_window(self, end: float) -> None:
        gauges = {name: _round(float(self._gauges[name]()))
                  for name in sorted(self._gauges)}
        deltas: dict[str, float] = {}
        for name in sorted(self._cums):
            current = float(self._cums[name]())
            deltas[name] = _round(current - self._base[name])
            self._base[name] = current
        win = TelemetryWindow(index=self._index, start=self._start, end=end,
                              events=self._events_in_window,
                              gauges=gauges, deltas=deltas)
        if self.host_rss:
            win.rss_kb = peak_rss_kb()
        if len(self.windows) >= self.ring:
            self.windows.pop(0)
            self.dropped += 1
        self.windows.append(win)
        self._index += 1
        self._start = end
        self._next_edge = end + self.window
        self._events_in_window = 0

    # -- read-out ----------------------------------------------------------
    def series(self, name: str) -> list[float]:
        """Per-window values of a source over the retained ring.

        Gauges yield their sampled values; cumulative sources yield
        per-second rates; ``"events_per_sec"`` is always available.
        """
        if name == "events_per_sec":
            return [w.events_per_sec for w in self.windows]
        if name in self._gauges:
            return [w.gauges[name] for w in self.windows]
        if name in self._cums:
            return [w.deltas[name] / w.span if w.span > 1e-9 else 0.0
                    for w in self.windows]
        raise KeyError(f"unknown telemetry source {name!r}")

    def summary(self) -> dict:
        """JSON-ready whole-run aggregate (sorted keys, sim-domain only)."""
        totals = {name: _round(float(self._cums[name]()) - self._initial[name])
                  for name in sorted(self._cums)}
        peak = max((w.events_per_sec for w in self.windows), default=0.0)
        last = self.windows[-1].gauges if self.windows else {}
        return {
            "window_s": self.window,
            "windows": self._index,
            "retained": len(self.windows),
            "dropped": self.dropped,
            "events_total": self.events_total,
            "peak_events_per_sec": _round(peak),
            "totals": totals,
            "last_gauges": dict(last),
        }


# -- exporters -------------------------------------------------------------

def telemetry_to_jsonl(sampler: TelemetrySampler,
                       include_host: bool = False) -> str:
    """One JSON object per line: every retained window (``"rec":
    "window"``) then the whole-run summary (``"rec": "summary"``).
    Deterministic text unless ``include_host`` adds RSS readings."""
    lines = []
    for win in sampler.windows:
        record = {"rec": "window"}
        record.update(win.to_dict(include_host))
        lines.append(json.dumps(record, sort_keys=True))
    record = {"rec": "summary"}
    record.update(sampler.summary())
    lines.append(json.dumps(record, sort_keys=True))
    return "\n".join(lines) + "\n"


def _metric_name(name: str, prefix: str) -> str:
    clean = re.sub(r"[^a-zA-Z0-9_]", "_", name)
    return f"{prefix}_{clean}"


def telemetry_to_prometheus(sampler: TelemetrySampler,
                            prefix: str = "repro") -> str:
    """Prometheus text exposition format (0.0.4).

    Cumulative sources export their whole-run totals as ``counter``
    metrics; the latest window's gauges export as ``gauge`` metrics.
    Purely sim-domain, so the text is byte-identical across runs.
    """
    summary = sampler.summary()
    lines = []

    def emit(name: str, kind: str, value: float, help_text: str) -> None:
        metric = _metric_name(name, prefix)
        lines.append(f"# HELP {metric} {help_text}")
        lines.append(f"# TYPE {metric} {kind}")
        lines.append(f"{metric} {value!r}" if isinstance(value, float)
                     else f"{metric} {value}")

    emit("events_total", "counter", summary["events_total"],
         "simulator events fired")
    emit("windows_total", "counter", summary["windows"],
         "telemetry windows closed")
    for name in sorted(summary["totals"]):
        emit(f"{name}_total", "counter", summary["totals"][name],
             "cumulative total over the run")
    for name in sorted(summary["last_gauges"]):
        emit(name, "gauge", summary["last_gauges"][name],
             "latest window sample")
    return "\n".join(lines) + "\n"


# -- renderers -------------------------------------------------------------

def render_windows(sampler: TelemetrySampler,
                   limit: Optional[int] = None) -> str:
    """A ``--watch``-style dump: one line per retained window."""
    windows = sampler.windows if limit is None else sampler.windows[-limit:]
    lines = []
    for win in windows:
        deltas = "  ".join(f"{k}={win.deltas[k]:g}"
                           for k in sorted(win.deltas))
        lines.append(f"[{win.start:8.2f} {win.end:8.2f})  "
                     f"ev={win.events:7d}  ev/s={win.events_per_sec:10.1f}"
                     + (f"  {deltas}" if deltas else ""))
    return "\n".join(lines)


def render_top(sampler: TelemetrySampler,
               kernel_stats: Optional[Any] = None,
               slo_results: Optional[list] = None,
               host: bool = True,
               title: str = "telemetry") -> str:
    """The final text dashboard: run totals, last-window gauges, and --
    when available -- scheduler introspection and SLO verdicts.

    ``kernel_stats`` accepts either a live :class:`KernelStats` or its
    :meth:`~KernelStats.report` dict (episode results carry the latter).
    """
    summary = sampler.summary()
    lines = [f"== {title} =="]
    lines.append(f"windows {summary['windows']} x {summary['window_s']:g}s"
                 f"   events {summary['events_total']}"
                 f"   peak {summary['peak_events_per_sec']:.0f} ev/s")
    if host:
        lines.append(f"peak rss {peak_rss_kb()} KiB")
    if summary["totals"]:
        lines.append("-- totals --")
        for name in sorted(summary["totals"]):
            lines.append(f"  {name:<28s} {summary['totals'][name]:g}")
    if summary["last_gauges"]:
        lines.append("-- gauges (last window) --")
        for name in sorted(summary["last_gauges"]):
            lines.append(f"  {name:<28s} {summary['last_gauges'][name]:g}")
    if kernel_stats is not None:
        report = (kernel_stats.report()
                  if hasattr(kernel_stats, "report") else kernel_stats)
        lines.append("-- scheduler --")
        lines.append(f"  scheduled {report['scheduled_total']}"
                     f"  fired {report['fired_total']}"
                     f"  cancelled {report['cancelled_total']}"
                     f"  heap high-water {report['heap_high_water']}"
                     f"  pool recycle {report['pool']['recycle_rate']:.1%}")
        for name, count in report["event_classes"]:
            lines.append(f"  event {name:<24s} {count}")
        for name, count in report.get("callsites", []):
            lines.append(f"  site  {name:<40s} {count}")
    if slo_results:
        lines.append("-- slo --")
        for res in slo_results:
            verdict = "PASS" if res["ok"] else "FAIL"
            value = res["value"]
            shown = f"{value:g}" if value is not None else "n/a"
            lines.append(f"  [{verdict}] {res['name']}: {res['metric']}"
                         f"={shown} {res['op']} {res['threshold']:g}")
    return "\n".join(lines)
