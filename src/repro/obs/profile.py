"""Subsystem attribution for cProfile runs and process-resource helpers.

``repro bench --profile`` used to dump raw pstats and stop there; this
module turns a profile into an answer to ROADMAP item 1's question --
*where does the wall-clock go?* -- by bucketing every profiled function
into a repository subsystem (sim kernel / net / splicer / cluster / ...)
and emitting a sorted, JSON-ready attribution table.

Attribution is purely lexical on ``co_filename``: the path segment after
the ``repro`` package root names the subsystem, with the splicer split
out of ``core`` because it is the hot path the fast-path work targets.
Everything outside the package is ``stdlib`` (interpreter / standard
library) or ``other``.

``peak_rss_kb`` reads the process high-water RSS.  It is host-dependent
by nature, so it never feeds a deterministic export -- bench reports and
the ``repro top`` dashboard only.
"""

from __future__ import annotations

import sys
from typing import Any

__all__ = ["SUBSYSTEMS", "classify_path", "attribute_profile", "peak_rss_kb"]

#: package directories that name their own attribution bucket
SUBSYSTEMS = ("sim", "net", "core", "splicer", "cluster", "mgmt", "obs",
              "chaos", "workload", "content", "experiments", "analysis")

_PACKAGE_DIRS = frozenset(SUBSYSTEMS) - {"splicer"}


def classify_path(path: str) -> str:
    """Map a source-file path to its attribution bucket.

    ``.../repro/core/splicer.py`` -> ``splicer`` (the hot path gets its
    own bucket), ``.../repro/sim/engine.py`` -> ``sim``, top-level
    package modules -> ``repro``, test files -> ``tests``, interpreter
    builtins and standard-library files -> ``stdlib``, anything else ->
    ``other``.
    """
    norm = path.replace("\\", "/")
    marker = "/repro/"
    idx = norm.rfind(marker)
    if idx >= 0:
        rest = norm[idx + len(marker):]
        if rest.startswith("core/splicer"):
            return "splicer"
        head = rest.split("/", 1)[0]
        if head in _PACKAGE_DIRS:
            return head
        return "repro"
    if "/tests/" in norm or norm.startswith("tests/"):
        return "tests"
    if norm in ("~", "") or norm.startswith("<"):
        # pstats uses "~" for C builtins and "<...>" for synthetic code
        return "stdlib"
    prefix = sys.prefix.replace("\\", "/")
    if norm.startswith(prefix) or "/lib/python" in norm:
        return "stdlib"
    return "other"


def _stats_table(profile: Any) -> dict:
    """The raw ``pstats`` entry table of a profiler or Stats object."""
    import pstats

    if isinstance(profile, pstats.Stats):
        return profile.stats  # type: ignore[attr-defined]
    return pstats.Stats(profile).stats  # type: ignore[attr-defined]


def attribute_profile(profile: Any, top: int = 15) -> dict:
    """Bucket a cProfile run into subsystems.

    Returns a JSON-ready dict: ``total_s`` (sum of per-function internal
    time), ``subsystems`` mapping bucket -> ``{calls, tottime_s, share}``
    sorted by key, and ``top_functions`` -- the ``top`` most expensive
    functions by internal time, each tagged with its bucket.
    """
    table = _stats_table(profile)
    buckets: dict[str, dict[str, float]] = {}
    functions = []
    total = 0.0
    for (path, line, func), (_cc, nc, tt, ct, _callers) in table.items():
        bucket = classify_path(path)
        agg = buckets.setdefault(bucket, {"calls": 0, "tottime_s": 0.0})
        agg["calls"] += nc
        agg["tottime_s"] += tt
        total += tt
        leaf = path.replace("\\", "/").rsplit("/", 1)[-1]
        functions.append((tt, ct, nc, f"{bucket}:{leaf}:{line}:{func}"))
    functions.sort(key=lambda item: (-item[0], item[3]))
    subsystems = {}
    for bucket in sorted(buckets):
        agg = buckets[bucket]
        subsystems[bucket] = {
            "calls": int(agg["calls"]),
            "tottime_s": round(agg["tottime_s"], 6),
            "share": round(agg["tottime_s"] / total, 4) if total > 0 else 0.0,
        }
    return {
        "total_s": round(total, 6),
        "subsystems": subsystems,
        "top_functions": [
            {"func": name, "calls": int(nc),
             "tottime_s": round(tt, 6), "cumtime_s": round(ct, 6)}
            for tt, ct, nc, name in functions[:top]
        ],
    }


def peak_rss_kb() -> int:
    """Process peak resident-set size in KiB (0 where unsupported).

    Host-dependent: report it, never pin it.  Linux reports ru_maxrss in
    KiB already; macOS reports bytes.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-posix platforms
        return 0
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - host-specific
        rss //= 1024
    return int(rss)
