"""The flight recorder: a bounded ring of the most recent trace events.

When an invariant (INV001-010) fires or a chaos episode fails, the final
counter snapshot says *that* something broke; the flight recorder says
*what happened just before*.  It keeps the last ``capacity`` events in a
deque and renders them as a formatted timeline that the invariant verifier
appends to its failure report and the chaos harness attaches to a failed
episode.

The recorder never allocates per-event beyond the deque append, so it is
safe to leave wired into long runs.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

__all__ = ["FlightRecorder", "format_event"]


def format_event(event) -> str:
    """One fixed-width timeline line for a :class:`~.tracer.TraceEvent`."""
    trace = f"#{event.trace_id}" if event.trace_id is not None else "-"
    phase = {"B": "[", "E": "]"}.get(event.phase, "*")
    attrs = " ".join(f"{k}={event.attrs[k]}" for k in sorted(event.attrs))
    return (f"{event.t:12.6f} {phase} {trace:>6} "
            f"{event.kind + '/' + event.name:<34} "
            f"{event.node or '-':<14} {attrs}").rstrip()


class FlightRecorder:
    """Last-N event ring buffer with a formatted timeline dump."""

    def __init__(self, capacity: int = 512):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.recorded = 0
        self._ring: deque = deque(maxlen=capacity)

    def record(self, event) -> None:
        self.recorded += 1
        self._ring.append(event)

    def __len__(self) -> int:
        return len(self._ring)

    @property
    def dropped(self) -> int:
        """Events that fell off the front of the ring."""
        return self.recorded - len(self._ring)

    def events(self) -> list:
        """Oldest-to-newest contents of the ring."""
        return list(self._ring)

    def render(self, last: Optional[int] = None) -> str:
        """The formatted timeline of the (last ``last``) buffered events."""
        events = self.events()
        if last is not None:
            events = events[-last:]
        if not events:
            return "flight recorder: empty"
        header = (f"flight recorder: {len(events)} of {self.recorded} "
                  f"events ({self.dropped} dropped)")
        lines = [header, f"{'sim-time':>12} p {'trace':>6} "
                         f"{'kind/name':<34} {'node':<14} attrs"]
        lines += [format_event(e) for e in events]
        return "\n".join(lines)
