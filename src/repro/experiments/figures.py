"""Reproduction of every table and figure in the paper's evaluation (§5).

* :func:`figure2`  -- throughput vs #clients, Workload A, three placement
  schemes (Figure 2);
* :func:`figure3`  -- throughput vs #clients, Workload B, full replication +
  WLC vs content partition + content-aware routing (Figure 3);
* :func:`figure4`  -- per-class throughput at saturation (120 clients) and
  the percentage gains from segregation (Figure 4);
* :func:`url_table_overhead` -- the §5.2 measurements: URL-table memory at
  the authors' site scale (~8 700 objects -> ~260 KB) and mean lookup
  latency (~4.32 us), with and without the entry cache.

Each function returns plain data (dicts/lists) and every result can be
rendered with :func:`render_table` for the terminal.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

from ..content import ContentType, generate_catalog
from ..core import UrlTable
from ..sim import RngStream, ZipfSampler
from ..workload import WORKLOAD_A, WORKLOAD_B
from .testbed import ExperimentConfig, build_deployment

__all__ = ["figure2", "figure3", "figure4", "url_table_overhead",
           "render_table", "DEFAULT_CLIENTS"]

DEFAULT_CLIENTS = (15, 30, 60, 90, 120)


def render_table(title: str, headers: Sequence[str],
                 rows: Sequence[Sequence]) -> str:
    """Plain-text table rendering for figure/table reproductions."""
    str_rows = [[f"{c:.1f}" if isinstance(c, float) else str(c)
                 for c in row] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in str_rows)) if str_rows
              else len(h) for i, h in enumerate(headers)]
    lines = [title,
             "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
             "  ".join("-" * w for w in widths)]
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _sweep(scheme: str, workload, clients: Sequence[int],
           duration: float, warmup: float, seed: int,
           fast_path: bool = False) -> list[dict]:
    results = []
    for n in clients:
        config = ExperimentConfig(scheme=scheme, workload=workload,
                                  duration=duration, warmup=warmup,
                                  seed=seed, fast_path=fast_path)
        deployment = build_deployment(config)
        results.append(deployment.run(n))
        results[-1]["n_clients"] = n
    return results


def figure2(clients: Sequence[int] = DEFAULT_CLIENTS,
            duration: float = 14.0, warmup: float = 4.0,
            seed: int = 42, fast_path: bool = False) -> dict:
    """Figure 2: Workload A throughput for the three placement schemes.

    Expected shape (the paper's result): NFS far below both, flat (the
    file server is the bottleneck); content partition + content-aware
    routing consistently above full replication (better cache hit rates
    from the reduced per-node working set).
    """
    schemes = ("replication-l4", "nfs-l4", "partition-ca")
    series = {scheme: _sweep(scheme, WORKLOAD_A, clients,
                             duration, warmup, seed, fast_path)
              for scheme in schemes}
    rows = []
    for i, n in enumerate(clients):
        rows.append([n] + [round(series[s][i]["throughput_rps"], 1)
                           for s in schemes])
    return {
        "workload": "A",
        "clients": list(clients),
        "series": {s: [r["throughput_rps"] for r in series[s]]
                   for s in schemes},
        "details": series,
        "rendered": render_table(
            "Figure 2: benefit of content partition (Workload A), req/s",
            ["clients", "full-replication+WLC", "shared-NFS+WLC",
             "partition+content-aware"],
            rows),
    }


def figure3(clients: Sequence[int] = DEFAULT_CLIENTS,
            duration: float = 14.0, warmup: float = 4.0,
            seed: int = 42, fast_path: bool = False) -> dict:
    """Figure 3: Workload B throughput, replication+WLC vs partition+CA.

    Expected shape: the content-aware configuration outperforms
    full replication with WLC -- content-blind dispatch keeps sending
    CPU-heavy dynamic requests to the slow/low-memory nodes.
    """
    schemes = ("replication-l4", "partition-ca")
    series = {scheme: _sweep(scheme, WORKLOAD_B, clients,
                             duration, warmup, seed, fast_path)
              for scheme in schemes}
    rows = []
    for i, n in enumerate(clients):
        rows.append([n] + [round(series[s][i]["throughput_rps"], 1)
                           for s in schemes])
    return {
        "workload": "B",
        "clients": list(clients),
        "series": {s: [r["throughput_rps"] for r in series[s]]
                   for s in schemes},
        "details": series,
        "rendered": render_table(
            "Figure 3: benefit of content partition (Workload B), req/s",
            ["clients", "full-replication+WLC", "partition+content-aware"],
            rows),
    }


def figure4(n_clients: int = 120, duration: float = 16.0,
            warmup: float = 4.0, seed: int = 42) -> dict:
    """Figure 4: per-class throughput at saturation (120 WebBench clients).

    The paper reports the content-aware router with content segregation
    raising average CGI / ASP / static throughput by 45 % / 42 % / 58 %
    over the baseline.  We reproduce the direction and magnitude band
    (tens of percent per class).
    """
    out: dict = {"n_clients": n_clients, "classes": {}}
    per_scheme: dict[str, dict[str, float]] = {}
    for scheme in ("replication-l4", "partition-ca"):
        config = ExperimentConfig(scheme=scheme, workload=WORKLOAD_B,
                                  duration=duration, warmup=warmup,
                                  seed=seed)
        deployment = build_deployment(config)
        result = deployment.run(n_clients)
        by_class = result["by_class"]
        per_scheme[scheme] = {
            "cgi": by_class.get("cgi", 0.0),
            "asp": by_class.get("asp", 0.0),
            "static": (by_class.get("html", 0.0) +
                       by_class.get("image", 0.0)),
        }
    rows = []
    for klass in ("cgi", "asp", "static"):
        base = per_scheme["replication-l4"][klass]
        segr = per_scheme["partition-ca"][klass]
        gain = (segr / base - 1.0) * 100.0 if base else float("inf")
        out["classes"][klass] = {"baseline_rps": base,
                                 "segregated_rps": segr,
                                 "gain_pct": gain}
        rows.append([klass, round(base, 1), round(segr, 1),
                     round(gain, 1)])
    out["rendered"] = render_table(
        f"Figure 4: benefit of content segregation at {n_clients} clients",
        ["class", "baseline req/s", "segregated req/s", "gain %"],
        rows)
    return out


def url_table_overhead(n_objects: int = 8700, lookups: int = 20000,
                       seed: int = 42,
                       cache_entries: Optional[int] = None) -> dict:
    """§5.2: URL-table memory footprint and mean lookup latency.

    The paper: "Our Web site contains about 8700 Web objects.  In such
    scale, the memory consumed by the URL table is about 260k bytes.
    During the peak load, the average lookup time is about 4.32 usecs."

    Lookup latency is measured in *real* microseconds on this host over a
    Zipf-distributed request stream.  ``cache_entries=0`` disables the
    recently-accessed entry cache (the ablation for [28]'s technique).
    """
    rng = RngStream(seed, "url-overhead")
    catalog = generate_catalog(n_objects, rng=rng.substream("catalog"))
    table = UrlTable() if cache_entries is None else \
        UrlTable(cache_entries=cache_entries)
    for item in catalog:
        table.insert(item, {"node-1"})
    paths = sorted(catalog.paths())
    zipf = ZipfSampler(len(paths), alpha=0.8, rng=rng.substream("zipf"))
    stream = [paths[zipf.sample() - 1] for _ in range(lookups)]
    start = time.perf_counter()   # det: allow[wall-clock] -- §5.2 measures
    for url in stream:            # real lookup latency on this host
        table.lookup(url)
    elapsed = time.perf_counter() - start  # det: allow[wall-clock]
    mean_us = elapsed / lookups * 1e6
    footprint = table.memory_footprint_bytes()
    return {
        "n_objects": n_objects,
        "memory_bytes": footprint,
        "memory_kb": footprint / 1024.0,
        "mean_lookup_us": mean_us,
        "cache_hit_rate": table.cache_hit_rate,
        "rendered": render_table(
            "Section 5.2: URL table overhead",
            ["objects", "memory KB", "mean lookup us", "entry-cache hits"],
            [[n_objects, round(footprint / 1024.0, 1), round(mean_us, 2),
              f"{table.cache_hit_rate:.0%}"]]),
    }
