"""Evaluation harness: testbed construction and figure/table reproduction."""

from .chaos import ChaosRunner, EpisodeResult
from .figures import (DEFAULT_CLIENTS, figure2, figure3, figure4,
                      render_table, url_table_overhead)
from .recovery import (collect_recovery_golden, recovery_episode_fn,
                       render_recovery, run_promotion_episode,
                       run_recovery_episode)
from .runner import SweepResult, grid, sweep_clients, write_csv
from .sweep import (SweepEngine, SweepError, SweepSpec, load_spec,
                    merge_sweep, write_report)
from .testbed import (SCHEMES, Deployment, ExperimentConfig,
                      build_deployment)

__all__ = [
    "ExperimentConfig", "Deployment", "build_deployment", "SCHEMES",
    "figure2", "figure3", "figure4", "url_table_overhead",
    "render_table", "DEFAULT_CLIENTS",
    "SweepResult", "sweep_clients", "grid", "write_csv",
    "ChaosRunner", "EpisodeResult",
    "SweepSpec", "SweepEngine", "SweepError", "load_spec", "merge_sweep",
    "write_report",
    "run_recovery_episode", "run_promotion_episode",
    "recovery_episode_fn", "render_recovery", "collect_recovery_golden",
]
