"""Recovery episodes: crash the management brain, prove it converges.

Two harnesses over the durability layer (:mod:`repro.mgmt.durability`):

* :func:`run_recovery_episode` -- a scripted management workload (place,
  replicate, update, offload, rename, remove) against the §5.1 testbed
  with a WAL-backed controller.  An optional
  :class:`~repro.mgmt.durability.CrashPlan` kills the controller at an
  exact WAL/dispatch boundary; the driver restarts it after a fixed
  delay, runs :func:`~repro.mgmt.durability.recover`, finishes the
  script, and a crash-tolerant finalize pass audits the cluster.  The
  outcome dict is plain sorted data -- a pure function of the seed and
  the crash boundary.

* :func:`run_promotion_episode` -- the HA variant: the primary
  distributor *and* the controller die mid-placement; the standby's
  lease-based promotion (:class:`~repro.core.failover.DistributorLease`)
  restores routing state from the WAL before serving, and recovery
  resolves the interrupted placement against node truth.  Used by the
  promotion-timing tests that sweep every crash instant between dispatch
  and agent ack.

:func:`recovery_episode_fn` adapts the first harness to the crash-point
explorer (:func:`repro.chaos.explore_crash_points`).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..analysis.invariants import check_invariants
from ..cluster import distributor_spec
from ..content import ContentItem, ContentType
from ..core import ContentAwareDistributor, UrlTable
from ..core.failover import DistributorLease, HaDistributorPair
from ..core.url_table import UrlTableError
from ..mgmt import Broker, Controller, ManagementError
from ..mgmt.durability import (ControllerCrashed, ControllerDurability,
                               CrashPlan, DurabilityConfig, recover)
from ..workload import WORKLOAD_A
from .testbed import ExperimentConfig, build_deployment

__all__ = ["run_recovery_episode", "recovery_episode_fn",
           "run_promotion_episode", "render_recovery",
           "collect_recovery_golden", "GOLDEN_RECOVERY_SCALE"]


def _build_mgmt(deployment, *, checkpoint_every: int,
                recovery_grace: float,
                crash_plan: Optional[CrashPlan]):
    """Controller + brokers + attached durability over a deployment."""
    sim = deployment.sim
    controller = Controller(sim, deployment.frontend.nic,
                            deployment.url_table, deployment.doctree,
                            tracer=deployment.tracer)
    controller.default_timeout = 1.0
    registry: dict[str, Broker] = {}
    for name in sorted(deployment.servers):
        broker = Broker(sim, deployment.lan, deployment.servers[name],
                        controller.nic, registry=registry)
        controller.register_broker(broker)
    durability = ControllerDurability(DurabilityConfig(
        checkpoint_every=checkpoint_every,
        recovery_grace=recovery_grace))
    durability.attach(controller)
    durability.crash_plan = crash_plan
    return controller, registry, durability


def _scripted_ops(controller: Controller, deployment) \
        -> list[tuple[str, Callable[[], Any]]]:
    """The episode's management workload, fully determined by the seed.

    Rename/remove touch only documents the script itself placed (never
    catalog content), so INV008 -- every catalog item resolvable -- holds
    at every crash point.
    """
    nodes = sorted(deployment.servers)
    new_a = ContentItem("/wal/reports/alpha.html", 24576,
                        ContentType.HTML, mutable=True)
    new_a_v2 = ContentItem("/wal/reports/alpha.html", 30720,
                           ContentType.HTML, mutable=True)
    new_b = ContentItem("/wal/media/banner.gif", 40960, ContentType.IMAGE)
    new_b2 = ContentItem("/wal/media/banner2.gif", 40960,
                         ContentType.IMAGE)
    cat_path = min(item.path for item in deployment.catalog)
    cat_holders = deployment.url_table.locations(cat_path)
    cat_target = [n for n in nodes if n not in cat_holders][0]
    return [
        ("place-a", lambda: controller.place(new_a, nodes[0])),
        ("place-b", lambda: controller.place(new_b, nodes[1])),
        ("replicate-a",
         lambda: controller.replicate(new_a.path, nodes[2])),
        ("replicate-catalog",
         lambda: controller.replicate(cat_path, cat_target)),
        ("update-a", lambda: controller.update_content(new_a_v2)),
        ("offload-a", lambda: controller.offload(new_a.path, nodes[0])),
        ("rename-b",
         lambda: controller.rename_document(new_b.path, new_b2)),
        ("remove-a", lambda: controller.remove_document(new_a.path)),
    ]


def run_recovery_episode(seed: int = 1,
                         crash_plan: Optional[CrashPlan] = None, *,
                         n_objects: int = 60,
                         restart_delay: float = 0.6,
                         recovery_timeout: float = 1.0,
                         recovery_grace: float = 0.4,
                         checkpoint_every: int = 24,
                         trace: bool = False) -> dict[str, Any]:
    """One scripted management episode, optionally crashed at a boundary.

    Returns a plain dict: boundary enumeration, per-op outcomes, the
    recovery report, the final audit, WAL counters, the live-vs-replay
    consistency check, and the invariant verdict.  ``converged`` is the
    survival property the crash-point explorer asserts.
    """
    config = ExperimentConfig(
        scheme="partition-ca", workload=WORKLOAD_A, seed=seed,
        n_objects=n_objects, warmup=0.25, duration=4.0,
        n_client_machines=2, prewarm=False, trace=trace)
    deployment = build_deployment(config)
    sim = deployment.sim
    controller, registry, durability = _build_mgmt(
        deployment, checkpoint_every=checkpoint_every,
        recovery_grace=recovery_grace, crash_plan=crash_plan)
    ops = _scripted_ops(controller, deployment)

    state: dict[str, Any] = {
        "completed": [], "failed": [], "interrupted": [],
        "recovery": None, "crashed_at": None, "restarted_at": None,
        "audit": None, "done": False,
    }

    def handle_crash():
        state["crashed_at"] = sim.now
        yield sim.timeout(restart_delay)
        controller.restart()
        state["restarted_at"] = sim.now
        report = yield from recover(controller, timeout=recovery_timeout)
        state["recovery"] = report

    def orchestrate():
        for name, factory in ops:
            try:
                yield from factory()
                state["completed"].append(name)
            except ControllerCrashed:
                state["interrupted"].append(name)
                yield from handle_crash()
            except (ManagementError, UrlTableError) as exc:
                state["failed"].append([name, str(exc)])
        # finalize: a crash-tolerant audit/reconcile pass (the crash
        # boundary may land inside these dispatches too)
        while True:
            try:
                audit = yield from controller.audit()
                dirty = sorted(
                    {node for _path, node in audit["missing"]}
                    | {node for _path, node in audit["orphaned"]})
                for node in dirty:
                    yield from controller.reconcile_node(
                        node, timeout=recovery_timeout)
                if dirty:
                    audit = yield from controller.audit()
                state["audit"] = audit
                state["done"] = True
                return
            except ControllerCrashed:
                yield from handle_crash()

    sim.process(orchestrate(), name="recovery-driver")
    sim.run()
    for name in sorted(registry):
        registry[name].stop()

    violations = check_invariants(
        controller.url_table, servers=deployment.servers,
        frontend=deployment.frontend, catalog=deployment.catalog)
    consistency = durability.verify_consistency()
    audit = state["audit"] or {"missing": [], "orphaned": [],
                               "nodes_audited": 0}
    recovery = state["recovery"]
    failures = []
    if not state["done"]:
        failures.append("episode did not finish")
    if audit["missing"] or audit["orphaned"]:
        failures.append(f"audit dirty: {len(audit['missing'])} missing, "
                        f"{len(audit['orphaned'])} orphaned")
    if violations:
        failures.append(f"{len(violations)} invariant violations")
    if consistency:
        failures.append("live state diverges from WAL replay")
    if durability.open:
        failures.append(f"{len(durability.open)} intents still open")
    return {
        "seed": seed,
        "boundaries": durability.boundaries,
        "descriptors": list(durability.boundary_log),
        "crashed": crash_plan.fired if crash_plan is not None else False,
        "crash_boundary": (crash_plan.at_boundary
                           if crash_plan is not None else None),
        "crashed_at": state["crashed_at"],
        "restarted_at": state["restarted_at"],
        "ops": {"completed": state["completed"],
                "failed": state["failed"],
                "interrupted": state["interrupted"]},
        "recovery": recovery.to_dict() if recovery is not None else None,
        "resolutions": (recovery.action_counts()
                        if recovery is not None else {}),
        "audit": {"missing": len(audit["missing"]),
                  "orphaned": len(audit["orphaned"]),
                  "nodes_audited": audit["nodes_audited"]},
        "wal": durability.counters(),
        "consistency": consistency,
        "invariant_violations": [f"{v.rule} {v.path}: {v.message}"
                                 for v in violations],
        "converged": not failures,
        "failure": "; ".join(failures),
    }


def recovery_episode_fn(seed: int = 1, **kwargs) \
        -> Callable[[Optional[CrashPlan]], dict[str, Any]]:
    """Adapt :func:`run_recovery_episode` for the crash-point explorer."""
    def episode(plan: Optional[CrashPlan]) -> dict[str, Any]:
        return run_recovery_episode(seed, crash_plan=plan, **kwargs)
    return episode


def render_recovery(outcome: dict[str, Any]) -> str:
    """A terminal rendering of one recovery episode outcome."""
    lines = [f"recovery episode: seed={outcome['seed']} "
             f"boundaries={outcome['boundaries']}"]
    ops = outcome["ops"]
    lines.append(f"  ops: {len(ops['completed'])} completed, "
                 f"{len(ops['failed'])} failed, "
                 f"{len(ops['interrupted'])} interrupted")
    if outcome["crashed"]:
        lines.append(f"  crashed at boundary "
                     f"{outcome['crash_boundary']} "
                     f"(t={outcome['crashed_at']:.3f}s), restarted at "
                     f"t={outcome['restarted_at']:.3f}s")
    recovery = outcome["recovery"]
    if recovery is not None:
        lines.append(f"  recovery: replayed "
                     f"{recovery['records_replayed']} records "
                     f"({recovery['applies_replayed']} applies), "
                     f"{recovery['open_intents']} open intents")
        for resolution in recovery["resolutions"]:
            lines.append(f"    intent #{resolution['op_id']} "
                         f"{resolution['op']}: {resolution['action']} "
                         f"-- {resolution['reason']}")
    wal = outcome["wal"]
    lines.append(f"  wal: {wal['appends']} appends, "
                 f"{wal['checkpoints']} checkpoints, "
                 f"{wal['open_intents']} open")
    audit = outcome["audit"]
    lines.append(f"  audit: {audit['missing']} missing, "
                 f"{audit['orphaned']} orphaned over "
                 f"{audit['nodes_audited']} nodes")
    lines.append("  CONVERGED" if outcome["converged"] else
                 f"  FAILED -- {outcome['failure']}")
    return "\n".join(lines)


# -- golden surface ---------------------------------------------------------

#: The scale the recovery golden fixture is captured at, and the crash
#: boundaries it pins.  The boundaries are spread across the scripted
#: episode so the fixture exercises roll-back (pre-delivery), roll-forward
#: (post-delivery) and already-applied resolutions.
GOLDEN_RECOVERY_SCALE = {"seed": 1, "n_objects": 60,
                         "checkpoint_every": 24,
                         "crash_boundaries": (2, 13, 37, 41)}


def _golden_projection(outcome: dict[str, Any]) -> dict[str, Any]:
    """The fixture-worthy slice of one episode outcome.

    Everything here is simulated (deterministic) state; nothing reads the
    host clock.  Boundary descriptors are dropped -- they are pinned
    implicitly by the crash episodes landing on the expected records.
    """
    recovery = outcome["recovery"]
    if recovery is not None:
        recovery = {
            "checkpoint_lsn": recovery["checkpoint_lsn"],
            "records_replayed": recovery["records_replayed"],
            "applies_replayed": recovery["applies_replayed"],
            "open_intents": recovery["open_intents"],
            "resolutions": [{"op": r["op"], "action": r["action"]}
                            for r in recovery["resolutions"]],
            "clean": recovery["clean"],
        }
    return {
        "boundaries": outcome["boundaries"],
        "crashed": outcome["crashed"],
        "crash_boundary": outcome["crash_boundary"],
        "ops": {"completed": list(outcome["ops"]["completed"]),
                "failed": list(outcome["ops"]["failed"]),
                "interrupted": list(outcome["ops"]["interrupted"])},
        "recovery": recovery,
        "resolutions": dict(outcome["resolutions"]),
        "audit": dict(outcome["audit"]),
        "wal": dict(outcome["wal"]),
        "consistency": list(outcome["consistency"]),
        "converged": outcome["converged"],
    }


def collect_recovery_golden() -> dict[str, Any]:
    """Baseline + pinned-boundary crash episodes as one golden dict."""
    scale = GOLDEN_RECOVERY_SCALE
    kwargs = {"n_objects": scale["n_objects"],
              "checkpoint_every": scale["checkpoint_every"]}
    baseline = run_recovery_episode(scale["seed"], **kwargs)
    crashes = {}
    for boundary in scale["crash_boundaries"]:
        outcome = run_recovery_episode(
            scale["seed"], crash_plan=CrashPlan(at_boundary=boundary),
            **kwargs)
        crashes[str(boundary)] = _golden_projection(outcome)
    return {
        "scale": {"seed": scale["seed"],
                  "n_objects": scale["n_objects"],
                  "checkpoint_every": scale["checkpoint_every"],
                  "crash_boundaries": list(scale["crash_boundaries"])},
        "baseline": _golden_projection(baseline),
        "crashes": crashes,
    }


# -- HA promotion under a mid-placement crash -------------------------------

def run_promotion_episode(crash_at: Optional[float], seed: int = 1, *,
                          n_objects: int = 40,
                          heartbeat_interval: float = 0.2,
                          misses_to_fail: int = 2,
                          lease_term: float = 0.5,
                          place_at: float = 0.3,
                          horizon: float = 6.0,
                          trace: bool = False) -> dict[str, Any]:
    """Kill primary + controller at ``crash_at`` during a placement.

    With ``crash_at=None`` nothing crashes -- the baseline run reports
    ``dispatched_at``/``acked_at``, the window the promotion-timing test
    sweeps.  Otherwise the standby promotes once the lease expires,
    restores routing state from the WAL (``recover_state``), and
    recovery resolves the interrupted placement.  The no-duplicate /
    no-loss property reported is ``routed == stored``: the placement
    either fully exists (routed and physically present) or fully does
    not, never half of it.
    """
    config = ExperimentConfig(
        scheme="partition-ca", workload=WORKLOAD_A, seed=seed,
        n_objects=n_objects, warmup=0.25, duration=4.0,
        n_client_machines=2, prewarm=False, trace=trace)
    deployment = build_deployment(config)
    sim, servers = deployment.sim, deployment.servers
    primary, tracer = deployment.frontend, deployment.tracer
    backup = ContentAwareDistributor(
        sim, deployment.lan, distributor_spec(), servers, UrlTable(),
        prefork=config.prefork, max_pool_size=config.max_pool_size,
        warmup=config.warmup, tracer=tracer, name="dist-backup")
    controller, registry, durability = _build_mgmt(
        deployment, checkpoint_every=24, recovery_grace=0.4,
        crash_plan=None)

    state: dict[str, Any] = {
        "dispatched_at": None, "acked_at": None, "placed": False,
        "interrupted": False,
    }

    def recover_state() -> None:
        # the standby takes over from durable truth: rebind the
        # management plane onto the backup, rebuild its table from the
        # WAL, and resolve interrupted intents against node truth
        controller.url_table = backup.url_table
        controller.nic = backup.nic
        for name in sorted(registry):
            registry[name].controller_nic = backup.nic
        durability.restore_tables(backup.url_table, deployment.doctree)
        controller.restart()
        sim.process(recover(controller, timeout=1.0),
                    name="ha-recovery")

    pair = HaDistributorPair(
        sim, primary, backup,
        heartbeat_interval=heartbeat_interval,
        misses_to_fail=misses_to_fail,
        lease=DistributorLease(sim, lease_term),
        recover_state=recover_state, tracer=tracer)

    doc = ContentItem("/ha/promo.html", 16384, ContentType.HTML)
    target = sorted(servers)[0]

    def driver():
        yield sim.timeout(place_at)
        state["dispatched_at"] = sim.now
        try:
            yield from controller.place(doc, target)
            state["placed"] = True
        except ControllerCrashed:
            state["interrupted"] = True
        state["acked_at"] = sim.now

    sim.process(driver(), name="ha-driver")
    if crash_at is not None:
        def crash() -> None:
            primary.crash()
            controller.crash()
        sim.schedule(crash_at, crash)
    sim.run(until=horizon)
    pair.stop()
    for name in sorted(registry):
        registry[name].stop()

    table = pair.active.url_table
    routed = doc.path in table and target in table.locations(doc.path)
    stored = servers[target].holds(doc.path)
    recovery = durability.last_recovery
    return {
        "crash_at": crash_at,
        "dispatched_at": state["dispatched_at"],
        "acked_at": state["acked_at"],
        "placed": state["placed"],
        "interrupted": state["interrupted"],
        "promoted": pair.failed_over,
        "lease_waits": pair.lease_waits,
        "routed": routed,
        "stored": stored,
        "atomic": routed == stored,
        "open_intents": len(durability.open),
        "consistency": durability.verify_consistency(),
        "recovery": (recovery.to_dict()
                     if recovery is not None else None),
    }
