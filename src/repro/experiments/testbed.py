"""Builds the paper's §5.1 testbed in the simulator, in each configuration.

The three configurations of §5.3:

1. ``replication-l4`` -- entire document set replicated on every backend,
   front-ended by the layer-4 TCP connection router with Weighted Least
   Connection;
2. ``nfs-l4`` -- entire set on a shared NFS server, same L4 front end;
3. ``partition-ca`` -- document tree partitioned by content type (large
   files on big/fast-disk nodes, dynamic content on fast-CPU nodes),
   front-ended by the content-aware distributor.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from ..cluster import (BackendServer, NfsServer, NodeSpec, distributor_spec,
                       paper_testbed_specs)
from ..content import DocTree, SiteCatalog, generate_catalog
from ..core import (ContentAwareDistributor, Frontend, L4Router, LardRouter,
                    OverloadConfig, UrlTable, apply_plan, full_replication,
                    partition_by_type, shared_nfs)
from ..net import Lan
from ..sim import RngStream, Simulator
from ..workload import RequestSampler, WebBenchRig, WorkloadSpec

__all__ = ["ExperimentConfig", "Deployment", "build_deployment",
           "wire_telemetry", "SCHEMES"]

#: ``replication-lard`` is an extension scheme (the paper's future-work
#: "more sophisticated load-balancing algorithm"): LARD over full
#: replication -- content-aware, but with a *dynamic* content->server map.
SCHEMES = ("replication-l4", "nfs-l4", "partition-ca", "replication-lard")

#: The NFS file server: era-typical dedicated box (same class as the
#: distributor machine).
_NFS_SPEC = NodeSpec(name="nfs-server", cpu_mhz=350, mem_mb=128,
                     disk=paper_testbed_specs()[-1].disk, os="linux")


@dataclasses.dataclass(frozen=True)
class ExperimentConfig:
    """One experiment cell: scheme x workload (+ knobs)."""

    scheme: str
    workload: WorkloadSpec
    seed: int = 42
    n_objects: Optional[int] = None      # default: workload.n_objects
    warmup: float = 2.0
    duration: float = 8.0                # total simulated seconds
    n_client_machines: int = 24
    prefork: int = 16
    max_pool_size: int = 64
    #: pre-populate memory caches with each node's most-popular content,
    #: so short runs measure steady-state behaviour instead of cold start
    prewarm: bool = True
    #: run the repro.analysis coherence checks (URL table vs stores, pool
    #: lease balance) periodically during the simulation; fails fast with
    #: InvariantError at the first incoherent state
    debug_invariants: bool = False
    #: wire overload control (admission + breakers + retry budget +
    #: slow-start) into the front end; None keeps the paper's unprotected
    #: data plane
    overload: Optional[OverloadConfig] = None
    #: attach a repro.obs tracer to the deployment: per-request spans,
    #: breaker/shed/pool point events, and a flight recorder.  Off by
    #: default -- tracer=None keeps the event sequence byte-for-byte
    trace: bool = False
    #: enable the kernel fast path (DESIGN.md §11): resource grants become
    #: synchronous and fault-free exchanges collapse to single completion
    #: events.  Off by default; when on, golden metrics, trace JSONL, and
    #: chaos outcome tables are byte-identical to the event-accurate path
    fast_path: bool = False
    #: attach a repro.obs KernelStats scheduler observer (with call-site
    #: attribution): per-event-class scheduled/fired/cancelled counts,
    #: heap high-water, pool recycling.  Passive -- byte-identical off/on
    kernel_stats: bool = False
    #: attach a repro.obs TelemetrySampler with this window length in sim
    #: seconds; None leaves the kernel's telemetry hook dormant.  The
    #: sampler is driven from Simulator.step (never by scheduled events),
    #: so the timeline is byte-identical off/on
    telemetry: Optional[float] = None

    def __post_init__(self):
        if self.scheme not in SCHEMES:
            raise ValueError(f"unknown scheme {self.scheme!r}; "
                             f"pick one of {SCHEMES}")
        if self.warmup >= self.duration:
            raise ValueError("warmup must be shorter than duration")


@dataclasses.dataclass
class Deployment:
    """A fully wired testbed ready to take client load."""

    config: ExperimentConfig
    sim: Simulator
    lan: Lan
    catalog: SiteCatalog
    servers: dict[str, BackendServer]
    frontend: Frontend
    url_table: UrlTable
    doctree: DocTree
    sampler: RequestSampler
    rig: WebBenchRig
    nfs: Optional[NfsServer] = None
    #: the repro.obs tracer, when config.trace is on
    tracer: Optional[object] = None
    #: the repro.obs KernelStats observer, when config.kernel_stats is on
    kernel_stats: Optional[object] = None
    #: the repro.obs TelemetrySampler, when config.telemetry is set
    telemetry: Optional[object] = None

    def run(self, n_clients: int) -> dict:
        """Drive ``n_clients`` for the configured duration; return summary."""
        self.rig.start_clients(n_clients)
        self.sim.run(until=self.config.duration)
        self.rig.stop_clients()
        tel = self.telemetry
        if tel is not None:
            tel.finalize(self.sim.now)
        summary = self.rig.summary(self.config.duration)
        summary["scheme"] = self.config.scheme
        summary["workload"] = self.config.workload.name
        summary["cache_hit_rates"] = {
            name: server.cache.hit_rate
            for name, server in self.servers.items()}
        summary["mean_cache_hit_rate"] = (
            sum(summary["cache_hit_rates"].values()) / len(self.servers))
        if self.nfs is not None:
            summary["nfs_rpcs"] = self.nfs.rpcs_served
            summary["nfs_nic_out_utilization"] = \
                self.nfs.nic.utilization_out()
            summary["nfs_disk_utilization"] = self.nfs.disk.utilization()
        summary["frontend_nic_out_utilization"] = \
            self.frontend.nic.utilization_out()
        summary["frontend_cpu_utilization"] = self.frontend.cpu.utilization()
        if tel is not None:
            # additive: cells without telemetry keep their exact summary
            summary["telemetry"] = tel.summary()
        if self.kernel_stats is not None:
            summary["kernel_stats"] = self.kernel_stats.report()
        return summary


def _prewarm_caches(catalog: SiteCatalog,
                    servers: dict[str, BackendServer],
                    nfs: Optional[NfsServer]) -> None:
    """Fill memory caches with the most-popular static content.

    Popularity within a class is assigned smallest-file-first by the
    request sampler, so ascending size is the popularity order.  A node
    with local content caches its own shard's hot set; in the NFS
    configuration (empty local stores) every node caches the site-wide hot
    set, as it would after serving the mixed stream for a while.
    """
    site_hot = sorted((i for i in catalog.static_items()),
                      key=lambda i: (i.size_bytes, i.path))
    for server in servers.values():
        # only locally held content is cacheable (NFS reads serve through)
        items = sorted((i for i in server.store if i.ctype.is_static),
                       key=lambda i: (i.size_bytes, i.path))
        cache = server.cache
        for item in items:
            if cache.used_bytes + item.size_bytes > cache.capacity_bytes:
                break
            cache.admit(item.path, item.size_bytes)
    if nfs is not None:
        for item in site_hot:
            if nfs.cache.used_bytes + item.size_bytes > \
                    nfs.cache.capacity_bytes:
                break
            nfs.cache.admit(item.path, item.size_bytes)


def build_deployment(config: ExperimentConfig) -> Deployment:
    """Construct the §5.1 cluster wired for ``config.scheme``."""
    rng = RngStream(config.seed, f"exp/{config.scheme}/{config.workload.name}")
    kernel_stats = None
    if config.kernel_stats:
        # local import keeps the observability layer optional for plain runs
        from ..obs import KernelStats
        kernel_stats = KernelStats(callsites=True)
    sim = Simulator(debug=config.debug_invariants,
                    fast_path=config.fast_path,
                    kernel_stats=kernel_stats)
    lan = Lan(sim)
    specs = paper_testbed_specs()
    servers: dict[str, BackendServer] = {}
    n_objects = config.n_objects or config.workload.n_objects
    catalog = generate_catalog(n_objects, rng=rng.substream("catalog"),
                               mix=config.workload.catalog_mix)

    nfs: Optional[NfsServer] = None
    if config.scheme == "nfs-l4":
        nfs = NfsServer(sim, lan, _NFS_SPEC)
    for spec in specs:
        servers[spec.name] = BackendServer(sim, lan, spec, nfs=nfs,
                                           warmup=config.warmup)

    node_names = [s.name for s in specs]
    if config.scheme in ("replication-l4", "replication-lard"):
        plan = full_replication(catalog, node_names)
    elif config.scheme == "nfs-l4":
        plan = shared_nfs(catalog, node_names)
    else:
        plan = partition_by_type(catalog, specs)
    url_table, doctree = apply_plan(plan, catalog, servers, nfs=nfs)

    def resolver(url: str):
        path = url.split("?", 1)[0]
        return catalog.get(path) if path in catalog else None

    tracer = None
    if config.trace:
        # local import keeps the observability layer optional for plain runs
        from ..obs import Tracer
        tracer = Tracer(sim)

    if config.scheme == "partition-ca":
        frontend: Frontend = ContentAwareDistributor(
            sim, lan, distributor_spec(), servers, url_table,
            prefork=config.prefork, max_pool_size=config.max_pool_size,
            warmup=config.warmup, overload=config.overload, tracer=tracer)
    elif config.scheme == "replication-lard":
        frontend = LardRouter(sim, lan, distributor_spec(), servers,
                              resolver, warmup=config.warmup,
                              overload=config.overload, tracer=tracer)
    else:
        frontend = L4Router(sim, lan, distributor_spec(), servers,
                            resolver, warmup=config.warmup,
                            overload=config.overload, tracer=tracer)

    if config.prewarm:
        _prewarm_caches(catalog, servers, nfs)

    sampler = RequestSampler(catalog, config.workload,
                             rng=rng.substream("requests"))
    rig = WebBenchRig(sim, frontend.submit, sampler,
                      n_machines=config.n_client_machines,
                      warmup=config.warmup,
                      think_time=config.workload.think_time,
                      rng=rng.substream("rig"))
    telemetry = None
    if config.telemetry is not None:
        # local import keeps the observability layer optional for plain runs
        from ..obs import TelemetrySampler
        telemetry = TelemetrySampler(window=config.telemetry).attach(sim)
    deployment = Deployment(config=config, sim=sim, lan=lan, catalog=catalog,
                            servers=servers, frontend=frontend,
                            url_table=url_table, doctree=doctree,
                            sampler=sampler, rig=rig, nfs=nfs, tracer=tracer,
                            kernel_stats=kernel_stats, telemetry=telemetry)
    if telemetry is not None:
        wire_telemetry(telemetry, deployment)
    if config.debug_invariants:
        # local import keeps the analysis layer optional for plain runs
        from ..analysis.invariants import install_invariants
        install_invariants(deployment)
    return deployment


def wire_telemetry(sampler, deployment: Deployment, rig=None) -> None:
    """Register the standard probe set on a freshly built deployment.

    Every probe is a read-only closure over existing counters --
    non-creating reads only (``counter_value``, ``state_of``,
    ``pools()``), so sampling can never materialize a collector, a
    breaker, or a pool that the un-instrumented run would not have.
    Episode harnesses that drive their own rig (chaos/overload) pass it
    via ``rig``; plain cells sample the deployment's own.
    """
    sim = deployment.sim
    if rig is None:
        rig = deployment.rig
    frontend = deployment.frontend
    metrics = frontend.metrics
    sampler.add_cumulative("requests", lambda: rig.meter.completions)
    sampler.add_cumulative("client_errors", lambda: rig.errors)
    sampler.add_cumulative(
        "sheds", lambda: metrics.counter_value("overload/shed"))
    sampler.add_cumulative(
        "timeouts", lambda: metrics.counter_value("overload/timeout"))
    sampler.add_cumulative(
        "lan_transfers", lambda: deployment.lan.total_transfers)
    sampler.add_gauge("heap_depth", lambda: float(sim.heap_depth))
    sampler.add_gauge("frontend_inflight",
                      lambda: float(frontend.inflight))
    ctl = frontend.overload
    if ctl is not None:
        sampler.add_gauge("admission_inflight",
                          lambda: float(ctl.admission.inflight))
        sampler.add_gauge("admission_queued",
                          lambda: float(ctl.admission.queued))
        sampler.add_gauge("breakers_open",
                          lambda: float(ctl.breakers.open_count()))
        sampler.add_cumulative("breakers_opened",
                               lambda: ctl.breakers.opened_total())
    pools = getattr(frontend, "pools", None)
    if pools is not None:
        sampler.add_gauge("pool_waiting", lambda: float(
            sum(p.waiting for p in pools.pools().values())))
        sampler.add_gauge("pool_leased", lambda: float(
            sum(p.leased_count for p in pools.pools().values())))
    for name in sorted(deployment.servers):
        server = deployment.servers[name]
        for gauge in sorted(server.telemetry_gauges()):
            sampler.add_gauge(
                f"{name}/{gauge}",
                lambda s=server, g=gauge: float(s.telemetry_gauges()[g]))
