"""Chaos episodes: seeded fault schedules against the full testbed.

Each episode builds a fresh §5.1 deployment (partition-ca scheme, HA
distributor pair, management plane with a cluster monitor), drives
closed-loop WebBench clients through it, injects a generated
:class:`~repro.chaos.FaultSchedule`, drains the clients, lets the cluster
reconverge, and then asserts the survival properties:

* every request was eventually answered or cleanly errored (no client
  process is stuck mid-request after the drain);
* the routing directory, the catalog, and the physical stores are
  coherent -- INV001-INV008 from :mod:`repro.analysis.invariants`;
* no leaked mapping entries or connection-pool leases on either
  distributor;
* replicas reconverge after the faults heal (the management plane's
  audit comes back clean, possibly after a reconcile pass).

The whole run is a pure function of its seed: same seed, byte-identical
report, regardless of PYTHONHASHSEED.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from ..analysis.invariants import check_invariants
from ..chaos import ChaosTargets, DiskSlowdown, FAULT_KINDS, FaultSchedule, \
    FlashCrowd, generate_schedule
from ..cluster import distributor_spec
from ..core import (ContentAwareDistributor, HaDistributorPair,
                    OverloadConfig, UrlTable)
from ..mgmt import Broker, ClusterMonitor, Controller
from ..sim import RngStream
from ..workload import WORKLOAD_A, WebBenchRig
from .figures import render_table
from .testbed import ExperimentConfig, build_deployment

__all__ = ["EpisodeResult", "ChaosRunner", "OverloadEpisodeResult",
           "OVERLOAD_EPISODE_CONFIG", "run_overload_episode"]

#: simulated seconds the harness allows the final audit/reconcile pass
FINALIZE_BUDGET = 6.0


@dataclasses.dataclass
class EpisodeResult:
    """Everything one chaos episode observed."""

    episode: int
    schedule: FaultSchedule
    completed: int
    errors: int
    failed_over: bool
    retries: int
    stuck_clients: list[str]
    invariant_violations: list[str]
    leak_violations: list[str]
    audit_clean: bool
    reconciled: bool          # final audit needed a reconcile pass
    finalize_done: bool
    #: flight-recorder dump captured when the episode failed (traced runs)
    timeline: str = ""
    #: repro.obs SLO verdicts (empty unless the runner samples telemetry);
    #: reported alongside survival, never folded into it -- an episode can
    #: survive its faults and still blow its latency objective
    slo_results: list = dataclasses.field(default_factory=list)
    #: whole-run telemetry aggregate (empty unless sampled)
    telemetry_summary: dict = dataclasses.field(default_factory=dict)

    @property
    def survived(self) -> bool:
        return (self.completed > 0 and not self.stuck_clients and
                not self.invariant_violations and not self.leak_violations
                and self.audit_clean and self.finalize_done)

    @property
    def slo_ok(self) -> bool:
        return all(r["ok"] for r in self.slo_results)

    def failure_summary(self) -> str:
        reasons = []
        if self.completed == 0:
            reasons.append("no requests completed")
        if self.stuck_clients:
            reasons.append(f"stuck clients: {self.stuck_clients}")
        if self.invariant_violations:
            reasons.append(
                f"invariants: {'; '.join(self.invariant_violations)}")
        if self.leak_violations:
            reasons.append(f"leaks: {'; '.join(self.leak_violations)}")
        if not self.finalize_done:
            reasons.append("audit/reconcile pass did not finish")
        elif not self.audit_clean:
            reasons.append("cluster did not reconverge (audit dirty)")
        return "; ".join(reasons) or "ok"


class ChaosRunner:
    """Run N seeded chaos episodes and aggregate a per-fault-class table."""

    def __init__(self, seed: int = 1, episodes: int = 20,
                 duration: float = 6.0, clients: int = 10,
                 n_objects: int = 300, settle: float = 2.5,
                 extra_faults: int = 2, trace: bool = False,
                 fast_path: bool = False,
                 telemetry: Optional[float] = None):
        if episodes < 1:
            raise ValueError("need at least one episode")
        if duration <= 1.0:
            raise ValueError("episodes shorter than 1 s prove nothing")
        self.seed = seed
        self.episodes = episodes
        self.duration = duration
        self.clients = clients
        self.n_objects = n_objects
        self.settle = settle
        self.extra_faults = extra_faults
        #: attach a repro.obs tracer to every episode; a failed episode's
        #: result then carries the flight recorder's final timeline
        self.trace = trace
        #: run every episode on the kernel fast path (byte-identical
        #: outcomes; the equivalence suite pins this)
        self.fast_path = fast_path
        #: sample windowed telemetry with this window length (sim seconds)
        #: and evaluate the chaos SLOs per episode; None = off
        self.telemetry = telemetry
        self.results: list[EpisodeResult] = []

    # -- one episode --------------------------------------------------------
    def run_episode(self, index: int) -> EpisodeResult:
        config = ExperimentConfig(
            scheme="partition-ca", workload=WORKLOAD_A,
            seed=self.seed * 1000 + index, n_objects=self.n_objects,
            warmup=0.5, duration=self.duration, n_client_machines=6,
            trace=self.trace, fast_path=self.fast_path)
        deployment = build_deployment(config)
        sim, lan = deployment.sim, deployment.lan
        servers = deployment.servers
        primary = deployment.frontend
        tracer = deployment.tracer

        # §2.3: hot backup distributor monitoring the primary
        backup = ContentAwareDistributor(
            sim, lan, distributor_spec(), servers, UrlTable(),
            prefork=config.prefork, max_pool_size=config.max_pool_size,
            warmup=config.warmup, tracer=tracer, name="dist-backup")

        # §3.1 management plane: controller + per-node brokers + monitor
        controller = Controller(sim, primary.nic, deployment.url_table,
                                deployment.doctree, tracer=tracer)
        controller.default_timeout = 1.0
        registry: dict[str, Broker] = {}
        for name in sorted(servers):
            broker = Broker(sim, lan, servers[name], controller.nic,
                            registry=registry)
            controller.register_broker(broker)
        monitor = ClusterMonitor(sim, controller, primary.view,
                                 interval=0.3, misses_to_fail=2,
                                 probe_timeout=0.5, tracer=tracer)
        monitor.start()

        def rebind_after_failover(p: HaDistributorPair) -> None:
            # the backup's replicated URL table becomes the live directory:
            # the management plane must mutate *it* from now on, and the
            # backup's routing view must learn which nodes are down
            controller.url_table = backup.url_table
            controller.nic = backup.nic
            for broker in sorted(registry):
                registry[broker].controller_nic = backup.nic
            for node in sorted(monitor.down_nodes):
                backup.view.mark_down(node)
            monitor.view = backup.view

        pair = HaDistributorPair(sim, primary, backup,
                                 heartbeat_interval=0.2, misses_to_fail=2,
                                 on_failover=rebind_after_failover,
                                 tracer=tracer)

        # the fault schedule, installed through the engine's injection hook
        ep_rng = RngStream(self.seed, f"chaos/episode/{index}")
        forced = FAULT_KINDS[index % len(FAULT_KINDS)]
        schedule = generate_schedule(
            ep_rng.substream("schedule"), sorted(servers), self.duration,
            forced=forced, extra_faults=self.extra_faults)
        rig = WebBenchRig(sim, pair.submit, deployment.sampler,
                          n_machines=config.n_client_machines,
                          warmup=config.warmup,
                          think_time=config.workload.think_time,
                          rng=ep_rng.substream("rig"))
        telemetry = None
        if self.telemetry is not None:
            # episodes drive their own rig, so wiring happens here rather
            # than in build_deployment (local import keeps obs optional)
            from ..obs import TelemetrySampler
            from .testbed import wire_telemetry
            telemetry = TelemetrySampler(window=self.telemetry).attach(sim)
            wire_telemetry(telemetry, deployment, rig=rig)
            deployment.telemetry = telemetry
        targets = ChaosTargets(sim=sim, lan=lan, servers=servers,
                               pair=pair, brokers=registry,
                               loss_rng=ep_rng.substream("loss"),
                               agent_rng=ep_rng.substream("agents"),
                               rig=rig, tracer=tracer)
        schedule.install(targets)
        rig.start_clients(self.clients)

        # drive, then drain: clients finish their in-flight request and
        # exit, so the post-settle state has no traffic of its own
        sim.run(until=self.duration)
        rig.request_stop()
        sim.run(until=self.duration + self.settle)
        stuck = sorted(c.client_id for c in rig.clients
                       if c.process.is_alive)

        # reconvergence: the management plane audits itself; divergence
        # left behind by abandoned (timed-out) agents is reconciled once,
        # after which the audit must come back clean
        finalize: dict = {}

        def finalize_pass():
            audit = yield from controller.audit()
            dirty = {node for _, node in audit["missing"]}
            dirty |= {node for _, node in audit["orphaned"]}
            finalize["reconciled"] = bool(dirty)
            for node in sorted(dirty):
                yield from controller.reconcile_node(node, timeout=1.0)
            if dirty:
                audit = yield from controller.audit()
            finalize["audit"] = audit
            finalize["done"] = True

        sim.process(finalize_pass(), name="chaos-finalize")
        sim.run(until=self.duration + self.settle + FINALIZE_BUDGET)

        monitor.stop()
        pair.stop()
        for name in sorted(registry):
            registry[name].stop()

        active = pair.active
        violations = check_invariants(active.url_table, servers=servers,
                                      frontend=active,
                                      catalog=deployment.catalog)
        leaks: list[str] = []
        for frontend in (primary, backup):
            if len(frontend.mapping) != 0:
                leaks.append(f"{frontend.name}: {len(frontend.mapping)} "
                             f"mapping entries leaked")
            for backend in sorted(frontend.pools.pools()):
                pool = frontend.pools.pools()[backend]
                if pool.leased_count != 0:
                    leaks.append(f"{frontend.name}/pool:{backend}: "
                                 f"{pool.leased_count} leases leaked")
        audit = finalize.get("audit", {})
        audit_clean = bool(audit) and not audit.get("missing") and \
            not audit.get("orphaned")
        slo_results: list = []
        telemetry_summary: dict = {}
        if telemetry is not None:
            from ..obs import (DEFAULT_CHAOS_SLOS, evaluate_slos,
                               slo_metrics_from_rig)
            telemetry.finalize(sim.now)
            telemetry_summary = telemetry.summary()
            slo_results = evaluate_slos(DEFAULT_CHAOS_SLOS,
                                        slo_metrics_from_rig(rig),
                                        telemetry)
        result = EpisodeResult(
            episode=index,
            schedule=schedule,
            completed=rig.meter.completions,
            errors=rig.errors,
            failed_over=pair.failed_over,
            retries=pair.retries,
            stuck_clients=stuck,
            invariant_violations=[f"{v.rule} {v.path}: {v.message}"
                                  for v in violations],
            leak_violations=leaks,
            audit_clean=audit_clean,
            reconciled=finalize.get("reconciled", False),
            finalize_done=finalize.get("done", False),
            slo_results=slo_results,
            telemetry_summary=telemetry_summary)
        if tracer is not None and not result.survived:
            # the failed episode's last moments, for the postmortem
            result.timeline = tracer.recorder.render()
        return result

    # -- the whole run -------------------------------------------------------
    def run(self) -> list[EpisodeResult]:
        self.results = [self.run_episode(i) for i in range(self.episodes)]
        return self.results

    @property
    def all_survived(self) -> bool:
        return bool(self.results) and all(r.survived for r in self.results)

    def outcome_table(self) -> str:
        """Per-fault-class outcomes across every episode."""
        injected: dict[str, int] = {cls.kind: 0 for cls in FAULT_KINDS}
        episodes: dict[str, set[int]] = {cls.kind: set()
                                         for cls in FAULT_KINDS}
        survived: dict[str, int] = {cls.kind: 0 for cls in FAULT_KINDS}
        for result in self.results:
            for kind in result.schedule.kinds():
                injected[kind] += sum(
                    1 for f in result.schedule if f.kind == kind)
                episodes[kind].add(result.episode)
                if result.survived:
                    survived[kind] += 1
        rows = [[kind, injected[kind], len(episodes[kind]),
                 f"{survived[kind]}/{len(episodes[kind])}"]
                for kind in sorted(injected) if episodes[kind]]
        return render_table(
            f"chaos: seed={self.seed} episodes={self.episodes} "
            f"duration={self.duration:.1f}s clients={self.clients}",
            ["fault class", "faults", "episodes", "survived"], rows)

    def report(self) -> str:
        lines = [self.outcome_table(), ""]
        for result in self.results:
            status = "ok  " if result.survived else "FAIL"
            lines.append(
                f"episode {result.episode:3d} [{status}] "
                f"completed={result.completed} errors={result.errors} "
                f"retries={result.retries}"
                f"{' failover' if result.failed_over else ''}"
                f"{' reconciled' if result.reconciled else ''}  "
                f"{result.schedule.describe()}")
            if result.slo_results:
                passed = sum(1 for r in result.slo_results if r["ok"])
                verdicts = " ".join(
                    f"{r['name']}={'ok' if r['ok'] else 'FAIL'}"
                    for r in result.slo_results)
                lines.append(f"            slo {passed}/"
                             f"{len(result.slo_results)}: {verdicts}")
            if not result.survived:
                lines.append(f"            {result.failure_summary()}")
                if result.timeline:
                    lines.extend("    " + ln
                                 for ln in result.timeline.splitlines())
        failed = sum(1 for r in self.results if not r.survived)
        lines.append("")
        lines.append(f"{len(self.results) - failed}/{len(self.results)} "
                     f"episodes survived"
                     + ("" if not failed else f" -- {failed} FAILED"))
        return "\n".join(lines)


# -- the dedicated overload episode (flash crowd + slow disk) ---------------

#: the episode's protection knobs: capacity low enough that the 4x flash
#: crowd overruns it (10 steady clients -> 40 in the burst, against
#: 16 + 8 admission slots), a request timeout short enough that the slowed
#: disk's queueing delay trips its breaker, and a cooldown short enough
#: that the breaker re-closes within the episode once the disk heals
OVERLOAD_EPISODE_CONFIG = OverloadConfig(
    max_inflight=16, max_queue=8, retry_after=0.3, request_timeout=0.8,
    breaker_failures=3, breaker_open_duration=1.0, slow_start_window=1.5)


@dataclasses.dataclass
class OverloadEpisodeResult:
    """Everything the overload episode observed."""

    seed: int
    enabled: bool
    duration: float
    schedule: FaultSchedule
    completed: int
    errors: int
    #: client-observed error statuses; with overload control every entry
    #: must be a clean 503 (no transport exceptions reach clients)
    error_statuses: dict
    shed: int
    degraded: int
    timeouts: int
    replica_retries: int
    budget_denied: int
    admission_peak_inflight: int
    admission_peak_queue: int
    admission_inflight_after: int
    admission_queued_after: int
    #: raw concurrency high-water inside the front end (always tracked,
    #: even with overload disabled -- the unbounded-queue observable)
    raw_peak_inflight: int
    pool_peak_waiting: int
    breaker_opened: int
    breaker_reclosed: int
    breakers_all_closed: bool
    open_nodes: tuple
    stuck_clients: list
    invariant_violations: list
    leak_violations: list
    config: Optional[OverloadConfig]
    #: the episode's repro.obs tracer (None unless ``trace=True``)
    tracer: Optional[object] = None
    #: flight-recorder dump captured when a traced episode failed
    timeline: str = ""
    #: kernel events scheduled over the episode (``Simulator.event_count``);
    #: used by the benchmark harness, not part of the outcome table
    events: int = 0
    #: the episode's repro.obs TelemetrySampler (None unless sampled)
    telemetry: Optional[object] = None
    #: SLO verdicts (empty unless telemetry/SLOs were requested); reported
    #: alongside survival, never folded into it
    slo_results: list = dataclasses.field(default_factory=list)
    #: scheduler introspection report (None unless ``kernel_stats=True``)
    kernel_stats: Optional[dict] = None

    @property
    def goodput(self) -> float:
        return self.completed / self.duration if self.duration > 0 else 0.0

    @property
    def slo_ok(self) -> bool:
        return all(r["ok"] for r in self.slo_results)

    @property
    def bounds_held(self) -> bool:
        if self.config is None:
            return False
        return (self.admission_peak_inflight <= self.config.max_inflight
                and self.admission_peak_queue <= self.config.max_queue)

    @property
    def survived(self) -> bool:
        basic = (self.completed > 0 and not self.stuck_clients
                 and not self.invariant_violations
                 and not self.leak_violations)
        if not self.enabled:
            return basic
        return (basic
                and set(self.error_statuses) <= {503}
                and self.bounds_held
                and self.breakers_all_closed
                and self.admission_inflight_after == 0
                and self.admission_queued_after == 0)

    def failure_summary(self) -> str:
        reasons = []
        if self.completed == 0:
            reasons.append("no requests completed")
        if self.stuck_clients:
            reasons.append(f"stuck clients: {self.stuck_clients}")
        if self.invariant_violations:
            reasons.append(
                f"invariants: {'; '.join(self.invariant_violations)}")
        if self.leak_violations:
            reasons.append(f"leaks: {'; '.join(self.leak_violations)}")
        if self.enabled:
            dirty = {s for s in self.error_statuses if s != 503}
            if dirty:
                reasons.append(f"unclean client errors: {sorted(map(str, dirty))}")
            if not self.bounds_held:
                reasons.append(
                    f"admission bounds exceeded: inflight "
                    f"{self.admission_peak_inflight}, queue "
                    f"{self.admission_peak_queue}")
            if not self.breakers_all_closed:
                reasons.append(f"breakers still open: {self.open_nodes}")
            if self.admission_inflight_after or self.admission_queued_after:
                reasons.append("admission not drained after settle")
        return "; ".join(reasons) or "ok"

    def report(self) -> str:
        mode = "overload control ON" if self.enabled else \
            "overload control OFF (unprotected data plane)"
        lines = [
            f"overload episode: seed={self.seed} "
            f"duration={self.duration:.1f}s -- {mode}",
            f"  faults: {self.schedule.describe()}",
            f"  completed={self.completed} errors={self.errors} "
            f"goodput={self.goodput:.1f} req/s",
            f"  raw peak inflight={self.raw_peak_inflight} "
            f"pool peak waiting={self.pool_peak_waiting}",
        ]
        if self.enabled:
            lines += [
                f"  shed={self.shed} degraded={self.degraded} "
                f"timeouts={self.timeouts} "
                f"replica-retries={self.replica_retries} "
                f"budget-denied={self.budget_denied}",
                f"  admission peaks: inflight="
                f"{self.admission_peak_inflight}/"
                f"{self.config.max_inflight} queue="
                f"{self.admission_peak_queue}/{self.config.max_queue}",
                f"  breakers: opened={self.breaker_opened} "
                f"reclosed={self.breaker_reclosed} "
                f"all-closed={self.breakers_all_closed}",
                f"  client error statuses: "
                f"{dict(sorted(self.error_statuses.items(), key=repr))}",
            ]
        for res in self.slo_results:
            verdict = "PASS" if res["ok"] else "FAIL"
            shown = f"{res['value']:g}" if res["value"] is not None else "n/a"
            lines.append(f"  slo [{verdict}] {res['name']}: "
                         f"{res['metric']}={shown} {res['op']} "
                         f"{res['threshold']:g}")
        status = "SURVIVED" if self.survived else \
            f"FAILED -- {self.failure_summary()}"
        lines.append(f"  {status}")
        if not self.survived and self.timeline:
            lines.extend("  " + ln for ln in self.timeline.splitlines())
        return "\n".join(lines)


def run_overload_episode(seed: int = 1, duration: float = 6.0,
                         clients: int = 10, n_objects: int = 300,
                         settle: float = 2.5, multiplier: float = 4.0,
                         config: OverloadConfig = OVERLOAD_EPISODE_CONFIG,
                         enabled: bool = True,
                         trace: bool = False,
                         fast_path: bool = False,
                         telemetry: Optional[float] = None,
                         slos=None,
                         kernel_stats: bool = False) -> OverloadEpisodeResult:
    """One seeded flash-crowd + slow-disk episode against the HA testbed.

    A 4x client burst overruns the admission bounds (shedding), while a
    concurrent disk slowdown on the busiest node pushes its service times
    past the request timeout (tripping that node's breaker); the disk
    heals mid-episode, so by the end the breaker must have probed its way
    back to CLOSED.  ``enabled=False`` runs the identical scenario on the
    paper's unprotected data plane -- the regression baseline showing the
    raw inflight population blowing through the bounds.

    Caches start cold (``prewarm=False``); a prewarmed hot set would serve
    the whole episode from memory and the slow disk would never be felt.

    ``telemetry`` samples the windowed series with that window length and
    evaluates the overload SLOs (``slos`` overrides the default specs);
    ``kernel_stats`` attaches the scheduler observer.  Both are passive:
    the outcome table and the event timeline are byte-identical either
    way.
    """
    exp = ExperimentConfig(
        scheme="partition-ca", workload=WORKLOAD_A, seed=seed,
        n_objects=n_objects, warmup=0.5, duration=duration,
        n_client_machines=6, prewarm=False,
        overload=config if enabled else None, trace=trace,
        fast_path=fast_path, kernel_stats=kernel_stats)
    deployment = build_deployment(exp)
    sim, lan, servers = deployment.sim, deployment.lan, deployment.servers
    primary = deployment.frontend
    tracer = deployment.tracer

    backup = ContentAwareDistributor(
        sim, lan, distributor_spec(), servers, UrlTable(),
        prefork=exp.prefork, max_pool_size=exp.max_pool_size,
        warmup=exp.warmup, tracer=tracer, name="dist-backup")
    pair = HaDistributorPair(
        sim, primary, backup, heartbeat_interval=0.2, misses_to_fail=2,
        retry_budget=primary.overload.retry_budget if enabled else None,
        tracer=tracer)

    # management plane; with overload on, dispatch timeouts feed the same
    # breaker board the data plane trips (satellite health signal)
    controller = Controller(sim, primary.nic, deployment.url_table,
                            deployment.doctree, tracer=tracer)
    controller.default_timeout = 1.0
    if enabled:
        controller.health_sink = primary.overload.breakers
    registry: dict[str, Broker] = {}
    for name in sorted(servers):
        broker = Broker(sim, lan, servers[name], controller.nic,
                        registry=registry)
        controller.register_broker(broker)
    monitor = ClusterMonitor(sim, controller, primary.view,
                             interval=0.3, misses_to_fail=2,
                             probe_timeout=0.5, tracer=tracer)
    monitor.start()

    ep_rng = RngStream(seed, "chaos/overload")
    rig = WebBenchRig(sim, pair.submit, deployment.sampler,
                      n_machines=exp.n_client_machines,
                      warmup=exp.warmup,
                      think_time=exp.workload.think_time,
                      rng=ep_rng.substream("rig"))
    sampler = None
    if telemetry is not None:
        # the episode drives its own rig, so wiring happens here rather
        # than in build_deployment (local import keeps obs optional)
        from ..obs import TelemetrySampler
        from .testbed import wire_telemetry
        sampler = TelemetrySampler(window=telemetry).attach(sim)
        wire_telemetry(sampler, deployment, rig=rig)
        deployment.telemetry = sampler
    # the node holding the most content sees the most traffic -- slow
    # *its* disk, so breaker trips are all but guaranteed under the burst
    slow_node = max(sorted(servers),
                    key=lambda n: len(servers[n].store))
    schedule = FaultSchedule([
        FlashCrowd(multiplier=multiplier, at=0.15 * duration,
                   duration=0.45 * duration),
        DiskSlowdown(node=slow_node, factor=10.0, at=0.20 * duration,
                     duration=0.25 * duration),
    ])
    targets = ChaosTargets(sim=sim, lan=lan, servers=servers, pair=pair,
                           brokers=registry, rig=rig, tracer=tracer)
    schedule.install(targets)

    rig.start_clients(clients)
    sim.run(until=duration)
    rig.request_stop()
    sim.run(until=duration + settle)
    stuck = sorted(c.client_id for c in rig.clients if c.process.is_alive)

    monitor.stop()
    pair.stop()
    for name in sorted(registry):
        registry[name].stop()

    active = pair.active
    violations = check_invariants(active.url_table, servers=servers,
                                  frontend=active,
                                  catalog=deployment.catalog)
    leaks: list[str] = []
    for frontend in (primary, backup):
        if len(frontend.mapping) != 0:
            leaks.append(f"{frontend.name}: {len(frontend.mapping)} "
                         f"mapping entries leaked")
        for backend in sorted(frontend.pools.pools()):
            pool = frontend.pools.pools()[backend]
            if pool.leased_count != 0:
                leaks.append(f"{frontend.name}/pool:{backend}: "
                             f"{pool.leased_count} leases leaked")

    ctl = primary.overload
    count = primary.metrics.counter
    shed = count("overload/shed").count
    slo_results: list = []
    if sampler is not None or slos is not None:
        from ..obs import (DEFAULT_OVERLOAD_SLOS, evaluate_slos,
                           slo_metrics_from_rig)
        if sampler is not None:
            sampler.finalize(sim.now)
        specs = slos if slos is not None else DEFAULT_OVERLOAD_SLOS
        slo_results = evaluate_slos(
            specs, slo_metrics_from_rig(rig, shed=shed), sampler)
    result = OverloadEpisodeResult(
        seed=seed,
        enabled=enabled,
        duration=duration,
        schedule=schedule,
        completed=rig.meter.completions,
        errors=rig.errors,
        error_statuses=dict(rig.error_statuses),
        shed=shed,
        degraded=count("overload/degraded").count,
        timeouts=count("overload/timeout").count,
        replica_retries=count("overload/replica-retry").count,
        budget_denied=pair.budget_denied,
        admission_peak_inflight=ctl.admission.peak_inflight if ctl else 0,
        admission_peak_queue=ctl.admission.peak_queue if ctl else 0,
        admission_inflight_after=ctl.admission.inflight if ctl else 0,
        admission_queued_after=ctl.admission.queued if ctl else 0,
        raw_peak_inflight=primary.peak_inflight,
        pool_peak_waiting=primary.pools.peak_waiting(),
        breaker_opened=ctl.breakers.opened_total() if ctl else 0,
        breaker_reclosed=ctl.breakers.reclosed_total() if ctl else 0,
        breakers_all_closed=ctl.breakers.all_closed() if ctl else True,
        open_nodes=tuple(ctl.breakers.open_nodes()) if ctl else (),
        stuck_clients=stuck,
        invariant_violations=[f"{v.rule} {v.path}: {v.message}"
                              for v in violations],
        leak_violations=leaks,
        config=config if enabled else None,
        tracer=tracer,
        events=sim.event_count,
        telemetry=sampler,
        slo_results=slo_results,
        kernel_stats=(deployment.kernel_stats.report()
                      if deployment.kernel_stats is not None else None))
    if tracer is not None and not result.survived:
        result.timeline = tracer.recorder.render()
    return result
