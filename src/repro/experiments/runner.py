"""Generic experiment sweeps with tabular/CSV export.

The figure functions in :mod:`repro.experiments.figures` are fixed
reproductions; this module is the general tool behind them for anyone
extending the evaluation: sweep any (scheme, workload) cell over client
counts or arbitrary config overrides, collect the standard summary rows,
and write them as CSV for external plotting.
"""

from __future__ import annotations

import csv
import dataclasses
from pathlib import Path
from typing import Iterable, Optional, Sequence

from ..workload import WorkloadSpec
from .testbed import ExperimentConfig, build_deployment

__all__ = ["SweepResult", "sweep_clients", "grid", "write_csv"]

#: The flat columns every sweep row carries (class columns appended).
BASE_COLUMNS = ("scheme", "workload", "n_clients", "throughput_rps",
                "latency_p50", "latency_p95", "completed", "errors",
                "mean_cache_hit_rate")


@dataclasses.dataclass
class SweepResult:
    """All points of one sweep, plus helpers for export."""

    rows: list[dict]

    def series(self, key: str = "throughput_rps") -> list:
        return [row[key] for row in self.rows]

    def columns(self) -> list[str]:
        extra = sorted({k for row in self.rows for k in row
                        if k.startswith(("class_", "telemetry_"))})
        return list(BASE_COLUMNS) + extra

    def as_table(self) -> list[list]:
        cols = self.columns()
        return [[row.get(c, "") for c in cols] for row in self.rows]


def _flatten(summary: dict, n_clients: int) -> dict:
    row = {
        "scheme": summary["scheme"],
        "workload": summary["workload"],
        "n_clients": n_clients,
        "throughput_rps": summary["throughput_rps"],
        "latency_p50": summary["latency_p50"],
        "latency_p95": summary["latency_p95"],
        "completed": summary["completed"],
        "errors": summary["errors"],
        "mean_cache_hit_rate": summary["mean_cache_hit_rate"],
    }
    for klass, rps in summary.get("by_class", {}).items():
        row[f"class_{klass}_rps"] = rps
    # additive: present only when the cell sampled windowed telemetry
    # (ExperimentConfig(telemetry=...) via config overrides)
    tel = summary.get("telemetry")
    if tel is not None:
        row["telemetry_windows"] = tel["windows"]
        row["telemetry_peak_eps"] = tel["peak_events_per_sec"]
    return row


def sweep_clients(scheme: str, workload: WorkloadSpec,
                  clients: Sequence[int],
                  **config_overrides) -> SweepResult:
    """Run one (scheme, workload) cell across client counts."""
    rows = []
    for n in clients:
        config = ExperimentConfig(scheme=scheme, workload=workload,
                                  **config_overrides)
        deployment = build_deployment(config)
        rows.append(_flatten(deployment.run(n), n))
    return SweepResult(rows=rows)


def grid(schemes: Iterable[str], workloads: Iterable[WorkloadSpec],
         clients: Sequence[int], **config_overrides) -> SweepResult:
    """The full cross product: every scheme x workload x client count."""
    rows: list[dict] = []
    for workload in workloads:
        for scheme in schemes:
            result = sweep_clients(scheme, workload, clients,
                                   **config_overrides)
            rows.extend(result.rows)
    return SweepResult(rows=rows)


def write_csv(result: SweepResult, path: str | Path) -> None:
    """Write a sweep as CSV (one row per point, stable column order)."""
    cols = result.columns()
    with open(path, "w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(cols)
        for row in result.as_table():
            writer.writerow(row)
