"""Wall-clock benchmark harness for the kernel fast path (DESIGN.md §11).

Every stage runs the same seeded workload twice -- once on the
segment/event-accurate path (``fast_path=False``) and once on the kernel
fast path -- measures wall-clock time and scheduled-event counts, and
compares a canonical digest of the simulated results.  The digest must be
byte-identical between the two runs: the fast path buys wall-clock time
only, never a different simulation.

Stages
------
``openloop_latency``
    An open-loop request stream through the *packet-level* splicing
    distributor (§2.2's mechanism).  Responses are MSS-fragmented, so the
    segment path pays ~4 scheduled events per 1460-byte fragment (data,
    pool-leg ACK, rewritten relay, client ACK) while the fast path
    collapses each burst into one aggregated exchange -- the flow-level
    splice fast-forward.  This is the stage the >=5x acceptance target
    applies to.
``fig2_workload_a`` / ``fig3_workload_b``
    One cell of the paper's Figure 2/3 sweeps on the request-level
    testbed (partition-ca scheme).  The fast path here is the synchronous
    resource-grant/pooled-timeout path; gains are bounded by model-layer
    work, so expect ~1.1-1.4x.
``overload_episode``
    The flash-crowd + slow-disk episode with overload control on.

Run via ``repro bench`` or ``make bench``; results land in
``BENCH_kernel.json`` (stable sorted-key schema, version 1).
"""

from __future__ import annotations

import cProfile
import hashlib
import json
import time
from typing import Callable, Optional

from ..content import ContentItem, ContentType
from ..core import SplicingDistributor, UrlTable
from ..net import Address, Host, HttpRequest, HttpResponse, Network, TcpState
from ..obs import KernelStats, attribute_profile, peak_rss_kb
from ..sim import RngStream, Simulator
from ..workload import WORKLOAD_A, WORKLOAD_B
from .testbed import ExperimentConfig, build_deployment

__all__ = ["BENCH_STAGES", "SCALES", "run_stage", "run_bench",
           "render_bench", "run_openloop_splice", "TARGET_STAGE",
           "TARGET_SPEEDUP"]

#: the acceptance target: the open-loop latency workload must run at
#: least this much faster on the fast path than on the segment path
TARGET_STAGE = "openloop_latency"
TARGET_SPEEDUP = 5.0

#: static document mix for the open-loop splicer workload: mostly small
#: pages with a heavy tail of large transfers, so the segment path's
#: per-fragment cost dominates (weights sum to 1.0)
_OPENLOOP_DOCS = (
    ("/index.html", 4 * 1024, ContentType.HTML, 0.60),
    ("/img/banner.gif", 30 * 1024, ContentType.IMAGE, 0.25),
    ("/doc/manual.html", 120 * 1024, ContentType.HTML, 0.10),
    ("/pub/release.avi", 1024 * 1024, ContentType.VIDEO, 0.05),
)

SCALES: dict[str, dict] = {
    "quick": dict(rate=250.0, openloop_duration=1.0,
                  fig_clients=15, fig_duration=2.5, fig_warmup=1.0,
                  ovl_duration=3.0, ovl_clients=6, ovl_objects=150,
                  ovl_settle=1.5),
    "default": dict(rate=400.0, openloop_duration=2.0,
                    fig_clients=60, fig_duration=6.0, fig_warmup=2.0,
                    ovl_duration=5.0, ovl_clients=10, ovl_objects=200,
                    ovl_settle=2.0),
    "full": dict(rate=600.0, openloop_duration=4.0,
                 fig_clients=120, fig_duration=10.0, fig_warmup=3.0,
                 ovl_duration=6.0, ovl_clients=10, ovl_objects=300,
                 ovl_settle=2.5),
}


# -- the open-loop packet-level workload -----------------------------------

def _openloop_schedule(rate: float, duration: float,
                       seed: int) -> list[tuple[float, str]]:
    """Precompute (arrival time, url) pairs; identical for both paths."""
    rng = RngStream(seed, "bench/openloop")
    cumulative = []
    acc = 0.0
    for path, _, _, weight in _OPENLOOP_DOCS:
        acc += weight
        cumulative.append((acc, path))
    schedule = []
    t = 0.0
    while True:
        t += rng.expovariate(rate)
        if t >= duration:
            break
        draw = rng.random()
        url = next(path for edge, path in cumulative if draw <= edge)
        schedule.append((t, url))
    return schedule


def run_openloop_splice(rate: float = 400.0, duration: float = 2.0,
                        seed: int = 42, fast_path: bool = False,
                        prefork: int = 8, mss: int = 1460,
                        kernel_stats: Optional[KernelStats] = None) -> dict:
    """Drive an open-loop client fleet through the splicing distributor.

    Returns a result dict whose ``"digest"`` covers every simulated
    observable (completions, bytes, segment counts, relay counters, and
    the full per-request completion timeline) and must be byte-identical
    between the segment path and the fast path -- and between a plain run
    and one probed with ``kernel_stats``.
    """
    sim = Simulator(fast_path=fast_path, kernel_stats=kernel_stats)
    net = Network(sim)
    table = UrlTable()
    sizes = {}
    backends = {}
    for i, name in enumerate(("s1", "s2")):
        ip = f"10.0.1.{i + 1}"
        backends[name] = Address(ip, 80)
        host = Host(net, ip)

        def app(sock, _mss=mss):
            def loop():
                while sock.state in (TcpState.ESTABLISHED,
                                     TcpState.CLOSE_WAIT):
                    payload, _ = yield sock.recv()
                    response = HttpResponse(
                        request=payload,
                        content_length=sizes[payload.url],
                        served_by=sock.local.ip)
                    sock.send_data(response, response.wire_bytes, mss=_mss)

            sim.process(loop())

        host.listen(80, app)
    for i, (path, nbytes, ctype, _) in enumerate(_OPENLOOP_DOCS):
        sizes[path] = nbytes
        owner = ("s1", "s2")[i % 2]
        table.insert(ContentItem(path, nbytes, ctype), {owner})

    dist = SplicingDistributor(sim, net, table, backends, prefork=prefork)
    ready = []
    dist.prefork_all().add_callback(lambda ev: ready.append(True))
    sim.run(until=0.05)
    assert ready, "prefork legs did not establish"
    base_events = sim.event_count
    base_segments = net.segments_sent

    client = Host(net, "10.0.9.1")
    vip = Address("10.0.0.100", 80)
    completions: list[tuple[float, int]] = []

    def one_request(url):
        sock = client.socket()
        yield sock.connect(vip)
        request = HttpRequest(url)
        sock.send(request, request.wire_bytes)
        received = 0
        payload = None
        while payload is None:          # last fragment carries the message
            payload, nbytes = yield sock.recv()
            received += nbytes
        completions.append((sim.now, received))
        yield sock.close()

    schedule = _openloop_schedule(rate, duration, seed)

    def driver():
        now = 0.0
        for t, url in schedule:
            if t > now:
                yield sim.timeout(t - now)
                now = t
            sim.process(one_request(url))

    start_time = sim.now
    wall = time.perf_counter()           # det: allow[wall-clock] -- bench
    sim.process(driver())
    sim.run(until=start_time + duration + 1.0)
    wall = time.perf_counter() - wall    # det: allow[wall-clock] -- bench
    if len(completions) != len(schedule):
        raise RuntimeError(f"openloop bench: {len(schedule)} arrivals but "
                           f"{len(completions)} completions")

    timeline = hashlib.sha256(
        json.dumps(completions).encode()).hexdigest()
    observed = {
        "completed": len(completions),
        "bytes_received": sum(n for _, n in completions),
        "segments_sent": net.segments_sent - base_segments,
        "relayed_to_server": dist.relayed_to_server,
        "relayed_to_client": dist.relayed_to_client,
        "mapping_open": len(dist.mapping),
        "idle_legs": {b: dist.idle_legs(b) for b in sorted(backends)},
        "completion_timeline_sha256": timeline,
    }
    return {
        "digest": json.dumps(observed, sort_keys=True),
        "wall_s": wall,
        "events": sim.event_count - base_events,
        "requests": len(completions),
        "sim_seconds": duration,
        "flow_forwards": net.flow_forwards,
    }


# -- request-level stages ---------------------------------------------------

def _run_cell(workload, clients: int, duration: float, warmup: float,
              seed: int, fast_path: bool,
              kernel_stats: bool = False) -> dict:
    config = ExperimentConfig(scheme="partition-ca", workload=workload,
                              duration=duration, warmup=warmup, seed=seed,
                              fast_path=fast_path, kernel_stats=kernel_stats)
    deployment = build_deployment(config)
    wall = time.perf_counter()           # det: allow[wall-clock] -- bench
    summary = deployment.run(clients)
    wall = time.perf_counter() - wall    # det: allow[wall-clock] -- bench
    # observability summaries are additive keys; strip them so the digest
    # compares only simulated observables (probe run == plain run)
    stats = summary.pop("kernel_stats", None)
    summary.pop("telemetry", None)
    out = {
        "digest": json.dumps(summary, sort_keys=True, default=repr),
        "wall_s": wall,
        "events": deployment.sim.event_count,
        "requests": summary["completed"],
        "sim_seconds": duration,
    }
    if stats is not None:
        out["kernel_stats"] = stats
    return out


def _run_overload(scale: dict, seed: int, fast_path: bool,
                  kernel_stats: bool = False) -> dict:
    # local import: repro.experiments.chaos pulls in the chaos harness
    from .chaos import run_overload_episode
    wall = time.perf_counter()           # det: allow[wall-clock] -- bench
    result = run_overload_episode(
        seed=seed, duration=scale["ovl_duration"],
        clients=scale["ovl_clients"], n_objects=scale["ovl_objects"],
        settle=scale["ovl_settle"], fast_path=fast_path,
        kernel_stats=kernel_stats)
    wall = time.perf_counter() - wall    # det: allow[wall-clock] -- bench
    out = {
        "digest": result.report(),
        "wall_s": wall,
        "events": result.events,
        "requests": result.completed,
        "sim_seconds": scale["ovl_duration"] + scale["ovl_settle"],
    }
    if result.kernel_stats is not None:
        out["kernel_stats"] = result.kernel_stats
    return out


def _stage_openloop(scale, seed, fast_path, kernel_stats=False):
    ks = KernelStats(callsites=True) if kernel_stats else None
    out = run_openloop_splice(rate=scale["rate"],
                              duration=scale["openloop_duration"],
                              seed=seed, fast_path=fast_path,
                              kernel_stats=ks)
    if ks is not None:
        out["kernel_stats"] = ks.report(top=8)
    return out


def _stage_fig2(scale, seed, fast_path, kernel_stats=False):
    return _run_cell(WORKLOAD_A, scale["fig_clients"],
                     scale["fig_duration"], scale["fig_warmup"],
                     seed, fast_path, kernel_stats=kernel_stats)


def _stage_fig3(scale, seed, fast_path, kernel_stats=False):
    return _run_cell(WORKLOAD_B, scale["fig_clients"],
                     scale["fig_duration"], scale["fig_warmup"],
                     seed, fast_path, kernel_stats=kernel_stats)


def _stage_overload(scale, seed, fast_path, kernel_stats=False):
    return _run_overload(scale, seed, fast_path, kernel_stats=kernel_stats)


BENCH_STAGES: dict[str, Callable] = {
    "openloop_latency": _stage_openloop,
    "fig2_workload_a": _stage_fig2,
    "fig3_workload_b": _stage_fig3,
    "overload_episode": _stage_overload,
}


# -- harness ---------------------------------------------------------------

def run_stage(name: str, scale: dict, seed: int) -> dict:
    """Run one stage on both paths; return its BENCH_kernel.json entry.

    A third *probe* run repeats the fast path with scheduler introspection
    (:class:`~repro.obs.telemetry.KernelStats`) attached; its digest must
    match the timed fast run -- the instrumentation's zero-perturbation
    contract, folded into ``identical`` -- and it supplies the per-stage
    event-class/callsite attribution, heap high-water, and peak RSS.
    """
    fn = BENCH_STAGES[name]
    segment = fn(scale, seed, False)
    fast = fn(scale, seed, True)
    probe = fn(scale, seed, True, kernel_stats=True)
    wall_seg, wall_fast = segment["wall_s"], fast["wall_s"]
    stats = probe["kernel_stats"]
    return {
        "events": {"fast": fast["events"], "segment": segment["events"]},
        "events_per_sec": {
            "fast": round(fast["events"] / wall_fast, 1),
            "segment": round(segment["events"] / wall_seg, 1)},
        "heap_high_water": stats["heap_high_water"],
        "identical": (segment["digest"] == fast["digest"]
                      and probe["digest"] == fast["digest"]),
        "kernel_stats": stats,
        "peak_rss_kb": peak_rss_kb(),
        "requests": segment["requests"],
        "sim_requests_per_sec": {
            "fast": round(fast["requests"] / wall_fast, 1),
            "segment": round(segment["requests"] / wall_seg, 1)},
        "sim_seconds": segment["sim_seconds"],
        "speedup": round(wall_seg / wall_fast, 2),
        "wall_s": {"fast": round(wall_fast, 4),
                   "segment": round(wall_seg, 4)},
    }


def run_bench(stages: Optional[list[str]] = None, scale: str = "default",
              seed: int = 42,
              profile: Optional[str] = None) -> dict:
    """Run the benchmark; return the BENCH_kernel.json payload.

    With ``profile`` set, the slowest stage (by segment-path wall time) is
    re-run on the fast path under :mod:`cProfile`; the pstats dump is
    written to that file and the payload gains a ``profile`` section with
    per-subsystem time attribution (sim kernel / net / splicer / cluster /
    obs / ...) -- the starting point for the next optimization round.
    """
    if stages is None:
        stages = list(BENCH_STAGES)
    unknown = [s for s in stages if s not in BENCH_STAGES]
    if unknown:
        raise ValueError(f"unknown bench stages: {unknown}; "
                         f"pick from {sorted(BENCH_STAGES)}")
    params = SCALES[scale]
    results = {name: run_stage(name, params, seed) for name in stages}
    payload = {
        "schema_version": 1,
        "scale": scale,
        "seed": seed,
        "stages": results,
        "target": {
            "min_speedup": TARGET_SPEEDUP,
            "stage": TARGET_STAGE,
            # null when the target stage was not part of this run
            "met": (results[TARGET_STAGE]["speedup"] >= TARGET_SPEEDUP and
                    results[TARGET_STAGE]["identical"])
            if TARGET_STAGE in results else None,
        },
    }
    if profile:
        slowest = max(results, key=lambda n: results[n]["wall_s"]["segment"])
        profiler = cProfile.Profile()
        profiler.enable()
        BENCH_STAGES[slowest](params, seed, True)
        profiler.disable()
        profiler.dump_stats(profile)
        payload["profile"] = {"stage": slowest, "pstats": profile,
                              "attribution": attribute_profile(profiler)}
    payload["peak_rss_kb"] = peak_rss_kb()
    return payload


def render_bench(payload: dict) -> str:
    """Terminal table for ``repro bench``."""
    from .figures import render_table
    rows = []
    for name, stage in payload["stages"].items():
        rows.append([
            name,
            stage["wall_s"]["segment"],
            stage["wall_s"]["fast"],
            f"{stage['speedup']:.2f}x",
            f"{stage['events']['segment']}/{stage['events']['fast']}",
            "yes" if stage["identical"] else "NO",
        ])
    table = render_table(
        f"Kernel fast path vs segment path (scale={payload['scale']}, "
        f"seed={payload['seed']})",
        ["stage", "segment s", "fast s", "speedup", "events seg/fast",
         "identical"],
        rows)
    target = payload["target"]
    if target["met"] is None:
        verdict = "not run (stage skipped)"
    else:
        verdict = "MET" if target["met"] else "NOT MET"
    return (f"{table}\n\ntarget: >= {target['min_speedup']:.0f}x on "
            f"{target['stage']} (fast path vs segment path) -- {verdict}")
