"""Golden-metrics regression harness.

A reduced-scale run of the paper's headline experiments (Figures 2 and 3
plus the §5.2 URL-table overhead) collapsed into one JSON-serialisable
dict.  The numbers are fully deterministic -- the simulator is seeded and
single-threaded -- so the fixture comparison is *exact*: any drift means
model behaviour changed, and the readable diff says exactly which series
moved and by how much.

Wall-clock quantities (the §5.2 ``mean_lookup_us``) are deliberately
excluded: they measure the host, not the model.
"""

from __future__ import annotations

from .figures import figure2, figure3, url_table_overhead

__all__ = ["collect_golden_metrics", "diff_metrics", "GOLDEN_SCALE",
           "GOLDEN_OVERLOAD_SCALE"]

#: The reduced scale the golden fixture is captured at.  Small enough for
#: tier-1 (a few seconds), large enough that every scheme serves real
#: traffic through warmup + measurement windows.
GOLDEN_SCALE = {"clients": (8, 16), "duration": 3.0, "warmup": 1.0,
                "seed": 42, "n_objects": 2000, "lookups": 4000}

#: A reduced overload episode (flash crowd + slow disk against the
#: protected data plane) pinning the shed / breaker counters exactly.
GOLDEN_OVERLOAD_SCALE = {"seed": 11, "duration": 5.0, "clients": 10,
                         "n_objects": 200, "settle": 2.0}


def collect_golden_metrics() -> dict:
    """Run the reduced-scale experiments and return the golden dict."""
    scale = GOLDEN_SCALE
    f2 = figure2(clients=scale["clients"], duration=scale["duration"],
                 warmup=scale["warmup"], seed=scale["seed"])
    f3 = figure3(clients=scale["clients"], duration=scale["duration"],
                 warmup=scale["warmup"], seed=scale["seed"])
    overhead = url_table_overhead(n_objects=scale["n_objects"],
                                  lookups=scale["lookups"],
                                  seed=scale["seed"])
    import hashlib

    from ..obs import TraceSummary, telemetry_to_jsonl
    from .chaos import run_overload_episode
    # the overload episode runs traced AND telemetry-sampled: because
    # both observers are passive, the overload counters must match a
    # bare run exactly -- the fixture itself pins the zero-perturbation
    # contract -- and the span/window counts become the trace_summary /
    # telemetry_summary golden surfaces
    ovl = run_overload_episode(**GOLDEN_OVERLOAD_SCALE, trace=True,
                               telemetry=0.5)
    tel = ovl.telemetry.summary()
    return {
        "scale": {"clients": list(scale["clients"]),
                  "duration": scale["duration"],
                  "warmup": scale["warmup"],
                  "seed": scale["seed"]},
        "figure2": {
            "clients": f2["clients"],
            "series": {scheme: [round(v, 4) for v in values]
                       for scheme, values in sorted(f2["series"].items())},
        },
        "figure3": {
            "clients": f3["clients"],
            "series": {scheme: [round(v, 4) for v in values]
                       for scheme, values in sorted(f3["series"].items())},
        },
        "url_table": {
            "n_objects": overhead["n_objects"],
            "memory_bytes": overhead["memory_bytes"],
            # deterministic cache behaviour; mean_lookup_us is wall clock
            # and intentionally NOT part of the golden surface
            "cache_hit_rate": round(overhead["cache_hit_rate"], 6),
        },
        "overload": {
            "scale": dict(GOLDEN_OVERLOAD_SCALE),
            "completed": ovl.completed,
            "errors": ovl.errors,
            "shed": ovl.shed,
            "degraded": ovl.degraded,
            "timeouts": ovl.timeouts,
            "replica_retries": ovl.replica_retries,
            "breaker_opened": ovl.breaker_opened,
            "breaker_reclosed": ovl.breaker_reclosed,
            "peak_inflight": ovl.admission_peak_inflight,
            "peak_queue": ovl.admission_peak_queue,
            "survived": ovl.survived,
        },
        "trace_summary": TraceSummary.from_tracer(ovl.tracer).counts(),
        "telemetry_summary": {
            "windows": tel["windows"],
            "events_total": tel["events_total"],
            "peak_events_per_sec": round(tel["peak_events_per_sec"], 4),
            "totals": {k: tel["totals"][k] for k in sorted(tel["totals"])},
            # the sim-domain JSONL export is byte-deterministic; pinning
            # its digest pins every window record at once
            "jsonl_sha256": hashlib.sha256(
                telemetry_to_jsonl(ovl.telemetry).encode()).hexdigest(),
            "slo": [{"name": r["name"], "ok": r["ok"]}
                    for r in ovl.slo_results],
        },
    }


def diff_metrics(expected, actual, path: str = "") -> list[str]:
    """Readable recursive diff: one ``path: expected -> actual`` line per
    divergence (missing keys, extra keys, length or value mismatches)."""
    lines: list[str] = []
    if isinstance(expected, dict) and isinstance(actual, dict):
        for key in sorted(expected.keys() | actual.keys()):
            sub = f"{path}.{key}" if path else str(key)
            if key not in actual:
                lines.append(f"{sub}: missing from actual "
                             f"(expected {expected[key]!r})")
            elif key not in expected:
                lines.append(f"{sub}: unexpected key "
                             f"(actual {actual[key]!r})")
            else:
                lines.extend(diff_metrics(expected[key], actual[key], sub))
    elif isinstance(expected, list) and isinstance(actual, list):
        if len(expected) != len(actual):
            lines.append(f"{path}: length {len(expected)} -> {len(actual)}")
        for i, (e, a) in enumerate(zip(expected, actual)):
            lines.extend(diff_metrics(e, a, f"{path}[{i}]"))
    elif expected != actual:
        if (isinstance(expected, (int, float)) and
                isinstance(actual, (int, float)) and expected):
            drift = (actual - expected) / expected * 100.0
            lines.append(f"{path}: {expected!r} -> {actual!r} "
                         f"({drift:+.2f}%)")
        else:
            lines.append(f"{path}: {expected!r} -> {actual!r}")
    return lines
