"""Deterministic merge: per-run artifacts -> one byte-stable report.

The merge reads every artifact of the (filtered) matrix back from disk,
validates each one, folds them into a single report dict keyed by cell
id, and computes cross-cell aggregates.  The fold iterates the matrix in
its canonical (sorted) order and the report is serialised with sorted
keys, so the bytes are independent of worker count, completion order,
resume history, and ``PYTHONHASHSEED`` -- the fleet-determinism battery
in ``tests/experiments/test_sweep_determinism.py`` pins exactly this.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

from .engine import load_artifact, runs_dir, sweep_dir
from .spec import (RunCell, SweepError, SweepSpec, canonical_json,
                   sha256_hex)

__all__ = ["REPORT_SCHEMA_VERSION", "merge_sweep", "write_report",
           "render_report"]

REPORT_SCHEMA_VERSION = 1


def _aggregates(cells: dict[str, dict]) -> dict:
    by_target: dict[str, dict] = {}
    survived = 0
    survival_runs = 0
    for cell_id in sorted(cells):
        entry = cells[cell_id]
        result = entry["result"]
        agg = by_target.setdefault(entry["target"], {
            "runs": 0, "completed": 0, "errors": 0})
        agg["runs"] += 1
        agg["completed"] += result["completed"]
        agg["errors"] += result["errors"]
        if "survived" in result:
            survival_runs += 1
            if result["survived"]:
                survived += 1
    return {
        "runs": len(cells),
        "completed": sum(t["completed"] for t in by_target.values()),
        "errors": sum(t["errors"] for t in by_target.values()),
        "by_target": by_target,
        "survival": {"survived": survived, "runs": survival_runs,
                     "all_survived": survived == survival_runs},
        # cheap cross-check for report consumers: the fold of every
        # per-run result digest, in canonical cell order
        "merge_sha256": sha256_hex(canonical_json(
            [[cell_id, cells[cell_id]["result_sha256"]]
             for cell_id in sorted(cells)])),
    }


def merge_sweep(spec: SweepSpec, out_root: str | Path,
                cell_filter: Optional[str] = None) -> dict:
    """Fold the sweep's artifacts into the report dict.

    Raises :class:`SweepError` if any artifact of the (filtered) matrix
    is missing or fails validation -- merging a partial sweep is an
    error, not a silently smaller report.
    """
    matrix: list[RunCell] = spec.cells()
    if cell_filter is not None:
        matrix = [c for c in matrix if cell_filter in c.cell_id]
        if not matrix:
            raise SweepError(f"filter {cell_filter!r} matches no cell of "
                             f"spec {spec.name!r}")
    run_directory = runs_dir(out_root, spec)
    cells: dict[str, dict] = {}
    missing: list[str] = []
    for cell in matrix:
        artifact = load_artifact(run_directory, cell)
        if artifact is None:
            missing.append(cell.cell_id)
            continue
        cells[cell.cell_id] = {
            "run_id": artifact["run_id"],
            "target": artifact["target"],
            "params": artifact["params"],
            "result": artifact["result"],
            "result_sha256": artifact["result_sha256"],
        }
    if missing:
        raise SweepError(
            f"cannot merge sweep {spec.name!r}: {len(missing)} of "
            f"{len(matrix)} artifacts missing or invalid:\n  "
            + "\n  ".join(sorted(missing)))
    return {
        "schema_version": REPORT_SCHEMA_VERSION,
        "spec": spec.as_dict(),
        "spec_hash": spec.spec_hash,
        "filter": cell_filter,
        "cells": cells,
        "aggregates": _aggregates(cells),
    }


def write_report(spec: SweepSpec, out_root: str | Path,
                 cell_filter: Optional[str] = None,
                 report: Optional[dict] = None) -> Path:
    """Merge (unless a merged ``report`` is passed in) and persist
    ``report.json``; returns its path."""
    if report is None:
        report = merge_sweep(spec, out_root, cell_filter=cell_filter)
    path = sweep_dir(out_root, spec) / "report.json"
    path.write_text(canonical_json(report), encoding="utf-8")
    return path


def render_report(report: dict) -> str:
    """Terminal table for ``repro sweep``."""
    from ..figures import render_table
    aggregates = report["aggregates"]
    rows = []
    for target in sorted(aggregates["by_target"]):
        entry = aggregates["by_target"][target]
        rows.append([target, entry["runs"], entry["completed"],
                     entry["errors"]])
    rows.append(["total", aggregates["runs"], aggregates["completed"],
                 aggregates["errors"]])
    survival = aggregates["survival"]
    title = (f"sweep {report['spec']['name']} "
             f"[{report['spec_hash']}] -- {aggregates['runs']} runs")
    table = render_table(title, ["target", "runs", "completed", "errors"],
                         rows)
    verdict = (f"survival: {survival['survived']}/{survival['runs']}"
               if survival["runs"] else "survival: n/a")
    return f"{table}\n{verdict}\nmerge sha256: " \
           f"{aggregates['merge_sha256'][:16]}"
