"""Deterministic merge: per-run artifacts -> one byte-stable report.

The merge reads every artifact of the (filtered) matrix back from disk,
validates each one, folds them into a single report dict keyed by cell
id, and computes cross-cell aggregates.  The fold iterates the matrix in
its canonical (sorted) order and the report is serialised with sorted
keys, so the bytes are independent of worker count, completion order,
resume history, and ``PYTHONHASHSEED`` -- the fleet-determinism battery
in ``tests/experiments/test_sweep_determinism.py`` pins exactly this.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

from .engine import load_artifact, runs_dir, sweep_dir
from .spec import (RunCell, SweepError, SweepSpec, canonical_json,
                   sha256_hex)

__all__ = ["REPORT_SCHEMA_VERSION", "merge_sweep", "write_report",
           "render_report", "compare_reports", "render_compare"]

REPORT_SCHEMA_VERSION = 1


def _aggregates(cells: dict[str, dict]) -> dict:
    by_target: dict[str, dict] = {}
    survived = 0
    survival_runs = 0
    slo = {"cells": 0, "checks": 0, "passed": 0, "all_ok": True}
    for cell_id in sorted(cells):
        entry = cells[cell_id]
        result = entry["result"]
        agg = by_target.setdefault(entry["target"], {
            "runs": 0, "completed": 0, "errors": 0})
        agg["runs"] += 1
        agg["completed"] += result["completed"]
        agg["errors"] += result["errors"]
        if "survived" in result:
            survival_runs += 1
            if result["survived"]:
                survived += 1
        verdicts = result.get("slo")
        if verdicts is not None:
            slo["cells"] += 1
            slo["checks"] += len(verdicts)
            slo["passed"] += sum(1 for v in verdicts if v["ok"])
            if not result.get("slo_ok", True):
                slo["all_ok"] = False
    out = {
        "runs": len(cells),
        "completed": sum(t["completed"] for t in by_target.values()),
        "errors": sum(t["errors"] for t in by_target.values()),
        "by_target": by_target,
        "survival": {"survived": survived, "runs": survival_runs,
                     "all_survived": survived == survival_runs},
        # cheap cross-check for report consumers: the fold of every
        # per-run result digest, in canonical cell order
        "merge_sha256": sha256_hex(canonical_json(
            [[cell_id, cells[cell_id]["result_sha256"]]
             for cell_id in sorted(cells)])),
    }
    # additive: present only when >= 1 cell sampled telemetry, so reports
    # of specs without it (and their pinned bytes) are unchanged
    if slo["cells"]:
        out["slo"] = slo
    return out


def merge_sweep(spec: SweepSpec, out_root: str | Path,
                cell_filter: Optional[str] = None) -> dict:
    """Fold the sweep's artifacts into the report dict.

    Raises :class:`SweepError` if any artifact of the (filtered) matrix
    is missing or fails validation -- merging a partial sweep is an
    error, not a silently smaller report.
    """
    matrix: list[RunCell] = spec.cells()
    if cell_filter is not None:
        matrix = [c for c in matrix if cell_filter in c.cell_id]
        if not matrix:
            raise SweepError(f"filter {cell_filter!r} matches no cell of "
                             f"spec {spec.name!r}")
    run_directory = runs_dir(out_root, spec)
    cells: dict[str, dict] = {}
    missing: list[str] = []
    for cell in matrix:
        artifact = load_artifact(run_directory, cell)
        if artifact is None:
            missing.append(cell.cell_id)
            continue
        cells[cell.cell_id] = {
            "run_id": artifact["run_id"],
            "target": artifact["target"],
            "params": artifact["params"],
            "result": artifact["result"],
            "result_sha256": artifact["result_sha256"],
        }
    if missing:
        raise SweepError(
            f"cannot merge sweep {spec.name!r}: {len(missing)} of "
            f"{len(matrix)} artifacts missing or invalid:\n  "
            + "\n  ".join(sorted(missing)))
    return {
        "schema_version": REPORT_SCHEMA_VERSION,
        "spec": spec.as_dict(),
        "spec_hash": spec.spec_hash,
        "filter": cell_filter,
        "cells": cells,
        "aggregates": _aggregates(cells),
    }


def write_report(spec: SweepSpec, out_root: str | Path,
                 cell_filter: Optional[str] = None,
                 report: Optional[dict] = None) -> Path:
    """Merge (unless a merged ``report`` is passed in) and persist
    ``report.json``; returns its path."""
    if report is None:
        report = merge_sweep(spec, out_root, cell_filter=cell_filter)
    path = sweep_dir(out_root, spec) / "report.json"
    path.write_text(canonical_json(report), encoding="utf-8")
    return path


def compare_reports(current: dict, prior: dict) -> dict:
    """Per-cell deltas between two merged sweep reports.

    Cells are matched by cell id over the intersection of the two
    matrices; added/removed cells are listed but never count as
    regressions (a grown matrix is not a regression).  A common cell
    regresses when its ``survived`` flag flips true -> false, its
    ``errors`` rise, or its ``completed`` falls.  The comparison also
    folds deltas per target and per parameter axis (every ``param:
    value`` pair of the cell's own params), so a regression can be
    localised to the axis value that moved.
    """
    cur_cells = current["cells"]
    old_cells = prior["cells"]
    common = sorted(set(cur_cells) & set(old_cells))
    cells: dict[str, dict] = {}
    regressions: list[dict] = []
    by_target: dict[str, dict] = {}
    axes: dict[str, dict[str, dict]] = {}
    for cell_id in common:
        cur = cur_cells[cell_id]
        old = old_cells[cell_id]
        deltas = {"completed": (cur["result"]["completed"]
                                - old["result"]["completed"]),
                  "errors": (cur["result"]["errors"]
                             - old["result"]["errors"])}
        entry: dict = {
            "target": cur["target"],
            "deltas": deltas,
            "changed": cur["result_sha256"] != old["result_sha256"],
        }
        reasons = []
        if "survived" in cur["result"] or "survived" in old["result"]:
            was = old["result"].get("survived")
            now = cur["result"].get("survived")
            entry["survived"] = {"prior": was, "current": now}
            if was is True and now is False:
                reasons.append("survived true -> false")
        if deltas["errors"] > 0:
            reasons.append(f"errors +{deltas['errors']}")
        if deltas["completed"] < 0:
            reasons.append(f"completed {deltas['completed']}")
        if reasons:
            entry["regressed"] = True
            regressions.append({"cell": cell_id, "reasons": reasons})
        cells[cell_id] = entry
        agg = by_target.setdefault(cur["target"], {
            "cells": 0, "completed": 0, "errors": 0, "regressed": 0})
        agg["cells"] += 1
        agg["completed"] += deltas["completed"]
        agg["errors"] += deltas["errors"]
        agg["regressed"] += 1 if reasons else 0
        for param in sorted(cur["params"]):
            bucket = axes.setdefault(param, {}).setdefault(
                str(cur["params"][param]),
                {"cells": 0, "completed": 0, "errors": 0, "regressed": 0})
            bucket["cells"] += 1
            bucket["completed"] += deltas["completed"]
            bucket["errors"] += deltas["errors"]
            bucket["regressed"] += 1 if reasons else 0
    return {
        "current_spec_hash": current["spec_hash"],
        "prior_spec_hash": prior["spec_hash"],
        "cells": cells,
        "added": sorted(set(cur_cells) - set(old_cells)),
        "removed": sorted(set(old_cells) - set(cur_cells)),
        "by_target": by_target,
        "axes": axes,
        "regressions": regressions,
        "regressed": bool(regressions),
    }


def render_compare(comparison: dict) -> str:
    """Terminal rendering for ``repro sweep --compare``."""
    lines = [f"compare: {comparison['prior_spec_hash'][:12]} -> "
             f"{comparison['current_spec_hash'][:12]} "
             f"({len(comparison['cells'])} common cells, "
             f"{len(comparison['added'])} added, "
             f"{len(comparison['removed'])} removed)"]
    for target in sorted(comparison["by_target"]):
        agg = comparison["by_target"][target]
        lines.append(f"  {target}: completed {agg['completed']:+d}, "
                     f"errors {agg['errors']:+d} over "
                     f"{agg['cells']} cells")
    moved_axes = [
        (param, value, bucket)
        for param in sorted(comparison["axes"])
        for value, bucket in sorted(comparison["axes"][param].items())
        if bucket["completed"] or bucket["errors"] or bucket["regressed"]]
    if moved_axes:
        lines.append("  moved axes:")
        for param, value, bucket in moved_axes:
            lines.append(f"    {param}={value}: completed "
                         f"{bucket['completed']:+d}, errors "
                         f"{bucket['errors']:+d}"
                         + (f", {bucket['regressed']} regressed"
                            if bucket["regressed"] else ""))
    if comparison["regressed"]:
        lines.append(f"  REGRESSED ({len(comparison['regressions'])} "
                     f"cells):")
        for reg in comparison["regressions"]:
            lines.append(f"    {reg['cell']}: "
                         + "; ".join(reg["reasons"]))
    else:
        lines.append("  no regressions")
    return "\n".join(lines)


def render_report(report: dict) -> str:
    """Terminal table for ``repro sweep``."""
    from ..figures import render_table
    aggregates = report["aggregates"]
    rows = []
    for target in sorted(aggregates["by_target"]):
        entry = aggregates["by_target"][target]
        rows.append([target, entry["runs"], entry["completed"],
                     entry["errors"]])
    rows.append(["total", aggregates["runs"], aggregates["completed"],
                 aggregates["errors"]])
    survival = aggregates["survival"]
    title = (f"sweep {report['spec']['name']} "
             f"[{report['spec_hash']}] -- {aggregates['runs']} runs")
    table = render_table(title, ["target", "runs", "completed", "errors"],
                         rows)
    verdict = (f"survival: {survival['survived']}/{survival['runs']}"
               if survival["runs"] else "survival: n/a")
    slo = aggregates.get("slo")
    if slo is not None:
        verdict += (f"\nslo: {slo['passed']}/{slo['checks']} checks passed "
                    f"over {slo['cells']} cells"
                    + ("" if slo["all_ok"] else " -- SLO FAILURES"))
    return f"{table}\n{verdict}\nmerge sha256: " \
           f"{aggregates['merge_sha256'][:16]}"
