"""Run targets: the existing evidence harnesses, callable per sweep cell.

Each target is a pure function ``params -> result dict``.  The result
must be JSON-serialisable, deterministic (a function of the params
alone), and free of wall-clock quantities -- it is hashed into the
artifact digest and compared byte-for-byte across worker counts and
``PYTHONHASHSEED`` values.  Every result carries uniform ``completed``
and ``errors`` counters so the merge step can aggregate across targets,
plus a ``survived`` flag where the harness defines one.

Targets reuse the one-at-a-time harnesses unchanged -- a cell run under
the sweep produces exactly the artifact the direct harness produces
(``tests/experiments/test_sweep_equivalence.py`` pins this).
"""

from __future__ import annotations

import itertools
from typing import Any, Callable

from .spec import SweepError

__all__ = ["TARGETS", "run_target", "reset_process_counters", "jsonify"]


def reset_process_counters() -> None:
    """Rewind the process-wide id counters before every run.

    Request/dispatch/connection ids are labels drawn from module-level
    counters, so two runs in one worker process would otherwise label
    their traffic differently from the same runs split across two
    workers.  Resetting them before each run makes every artifact a pure
    function of its cell -- independent of which worker ran it, and of
    how many cells that worker ran first.
    """
    from ...core import conn_pool, frontend
    from ...mgmt import messages
    from ...net import http

    http._request_ids = itertools.count(1)
    messages._dispatch_ids = itertools.count(1)
    conn_pool._conn_ids = itertools.count(1)
    frontend._client_ports = itertools.count(40000)


def jsonify(obj: Any) -> Any:
    """Deterministic JSON projection of a harness result.

    Numbers, strings, bools, and ``None`` pass through; mappings get
    string keys; tuples/lists/sets become lists (sets sorted by their
    rendered form); anything else falls back to ``repr``.
    """
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    if isinstance(obj, dict):
        converted = {str(key): jsonify(value) for key, value in obj.items()}
        if len(converted) != len(obj):
            raise SweepError(f"result mapping keys collide after str(): "
                             f"{sorted(converted)}")
        return converted
    if isinstance(obj, (list, tuple)):
        return [jsonify(item) for item in obj]
    if isinstance(obj, (set, frozenset)):
        return sorted((jsonify(item) for item in obj), key=repr)
    return repr(obj)


def _check_params(target: str, params: dict, required: frozenset[str],
                  optional: frozenset[str]) -> None:
    missing = sorted(required - set(params))
    if missing:
        raise SweepError(f"target {target!r}: missing parameters {missing}")
    unknown = sorted(set(params) - required - optional)
    if unknown:
        raise SweepError(f"target {target!r}: unknown parameters {unknown} "
                         f"(allowed: {sorted(required | optional)})")


# -- experiment cell: one scheme x workload x client-count point ------------

_CELL_REQUIRED = frozenset({"seed", "clients"})
_CELL_OPTIONAL = frozenset({"scheme", "workload", "duration", "warmup",
                            "n_objects", "n_client_machines", "prewarm",
                            "fast_path"})


def _target_cell(params: dict) -> dict:
    from ...workload import WORKLOAD_A, WORKLOAD_B
    from ..testbed import ExperimentConfig, build_deployment
    _check_params("cell", params, _CELL_REQUIRED, _CELL_OPTIONAL)
    workloads = {"A": WORKLOAD_A, "B": WORKLOAD_B}
    workload_name = params.get("workload", "A")
    if workload_name not in workloads:
        raise SweepError(f"target 'cell': unknown workload "
                         f"{workload_name!r} (pick from "
                         f"{sorted(workloads)})")
    config = ExperimentConfig(
        scheme=params.get("scheme", "partition-ca"),
        workload=workloads[workload_name],
        seed=params["seed"],
        n_objects=params.get("n_objects"),
        warmup=params.get("warmup", 2.0),
        duration=params.get("duration", 8.0),
        n_client_machines=params.get("n_client_machines", 24),
        prewarm=params.get("prewarm", True),
        fast_path=params.get("fast_path", False))
    summary = build_deployment(config).run(params["clients"])
    return {"completed": summary["completed"],
            "errors": summary["errors"],
            "summary": jsonify(summary)}


# -- chaos: N seeded fault-injection episodes -------------------------------

_CHAOS_REQUIRED = frozenset({"seed"})
_CHAOS_OPTIONAL = frozenset({"episodes", "duration", "clients", "n_objects",
                             "settle", "extra_faults", "fast_path",
                             "telemetry"})


def _target_chaos(params: dict) -> dict:
    from ..chaos import ChaosRunner
    _check_params("chaos", params, _CHAOS_REQUIRED, _CHAOS_OPTIONAL)
    telemetry = params.get("telemetry")
    runner = ChaosRunner(
        seed=params["seed"],
        episodes=params.get("episodes", 1),
        duration=params.get("duration", 6.0),
        clients=params.get("clients", 10),
        n_objects=params.get("n_objects", 300),
        settle=params.get("settle", 2.5),
        extra_faults=params.get("extra_faults", 2),
        fast_path=params.get("fast_path", False),
        telemetry=telemetry)
    runner.run()
    episodes = [{"episode": r.episode,
                 "survived": r.survived,
                 "completed": r.completed,
                 "errors": r.errors,
                 "retries": r.retries,
                 "failed_over": r.failed_over,
                 "reconciled": r.reconciled,
                 "schedule": r.schedule.describe()}
                for r in runner.results]
    out = {"completed": sum(e["completed"] for e in episodes),
           "errors": sum(e["errors"] for e in episodes),
           "survived": runner.all_survived,
           "episodes": episodes,
           "report": runner.report()}
    if telemetry is not None:
        # additive keys: only cells that opt into telemetry carry them,
        # so specs without it keep byte-identical artifacts and digests
        out["slo"] = jsonify([res for r in runner.results
                              for res in r.slo_results])
        out["slo_ok"] = all(r.slo_ok for r in runner.results)
        out["telemetry"] = jsonify([r.telemetry_summary
                                    for r in runner.results])
    return out


# -- overload: the flash-crowd + slow-disk graceful-degradation episode -----

_OVERLOAD_REQUIRED = frozenset({"seed"})
_OVERLOAD_OPTIONAL = frozenset({"duration", "clients", "n_objects", "settle",
                                "multiplier", "enabled", "fast_path",
                                "telemetry"})


def _target_overload(params: dict) -> dict:
    from ..chaos import run_overload_episode
    _check_params("overload", params, _OVERLOAD_REQUIRED, _OVERLOAD_OPTIONAL)
    telemetry = params.get("telemetry")
    result = run_overload_episode(
        seed=params["seed"],
        duration=params.get("duration", 6.0),
        clients=params.get("clients", 10),
        n_objects=params.get("n_objects", 300),
        settle=params.get("settle", 2.5),
        multiplier=params.get("multiplier", 4.0),
        enabled=params.get("enabled", True),
        fast_path=params.get("fast_path", False),
        telemetry=telemetry)
    out = {"completed": result.completed,
           "errors": result.errors,
           "survived": result.survived,
           "enabled": result.enabled,
           "error_statuses": jsonify(result.error_statuses),
           "shed": result.shed,
           "degraded": result.degraded,
           "timeouts": result.timeouts,
           "replica_retries": result.replica_retries,
           "budget_denied": result.budget_denied,
           "peak_inflight": result.admission_peak_inflight,
           "peak_queue": result.admission_peak_queue,
           "raw_peak_inflight": result.raw_peak_inflight,
           "breaker_opened": result.breaker_opened,
           "breaker_reclosed": result.breaker_reclosed,
           "report": result.report()}
    if telemetry is not None:
        # additive keys, same contract as the chaos target above
        out["slo"] = jsonify(result.slo_results)
        out["slo_ok"] = result.slo_ok
        out["telemetry"] = jsonify(result.telemetry.summary())
    return out


# -- recover: exhaustive crash-point exploration (DESIGN §14) ---------------

_RECOVER_REQUIRED = frozenset({"seed"})
_RECOVER_OPTIONAL = frozenset({"offset", "limit", "restart_delay",
                               "n_objects", "checkpoint_every"})


def _target_recover(params: dict) -> dict:
    """Crash the controller at every WAL/dispatch boundary of the scripted
    management episode; ``offset``/``limit`` shard the boundary space so a
    sweep can fan the exploration across workers."""
    from ...chaos import explore_crash_points
    from ..recovery import recovery_episode_fn
    _check_params("recover", params, _RECOVER_REQUIRED, _RECOVER_OPTIONAL)
    episode = recovery_episode_fn(
        params["seed"],
        n_objects=params.get("n_objects", 60),
        restart_delay=params.get("restart_delay", 0.6),
        checkpoint_every=params.get("checkpoint_every", 24))
    report = explore_crash_points(episode,
                                  offset=params.get("offset", 0),
                                  limit=params.get("limit"))
    converged = sum(1 for e in report["explored"] if e["converged"])
    return {"completed": converged,
            "errors": len(report["failures"]),
            "survived": report["all_converged"],
            "boundaries": report["boundaries"],
            "coverage": jsonify(report["coverage"]),
            "failures": jsonify(report["failures"]),
            "explored": jsonify(report["explored"])}


# -- openloop: the packet-level splice bench stage (digest only) ------------

_OPENLOOP_REQUIRED = frozenset({"seed"})
_OPENLOOP_OPTIONAL = frozenset({"rate", "duration", "prefork", "mss",
                                "fast_path"})


def _target_openloop(params: dict) -> dict:
    from ..bench import run_openloop_splice
    _check_params("openloop", params, _OPENLOOP_REQUIRED, _OPENLOOP_OPTIONAL)
    out = run_openloop_splice(
        rate=params.get("rate", 400.0),
        duration=params.get("duration", 2.0),
        seed=params["seed"],
        fast_path=params.get("fast_path", False),
        prefork=params.get("prefork", 8),
        mss=params.get("mss", 1460))
    # wall_s is deliberately dropped: it measures the host, not the model
    return {"completed": out["requests"],
            "errors": 0,
            "digest": out["digest"],
            "events": out["events"],
            "flow_forwards": out["flow_forwards"],
            "sim_seconds": out["sim_seconds"]}


TARGETS: dict[str, Callable[[dict], dict]] = {
    "cell": _target_cell,
    "chaos": _target_chaos,
    "overload": _target_overload,
    "openloop": _target_openloop,
    "recover": _target_recover,
}


def run_target(target: str, params: dict) -> dict:
    """Reset process-global counters, then run one target."""
    if target not in TARGETS:
        raise SweepError(f"unknown target {target!r}; "
                         f"pick from {sorted(TARGETS)}")
    reset_process_counters()
    return TARGETS[target](params)
