"""The sweep engine: expand, fan out, write content-addressed artifacts.

Every run is executed by :func:`execute_cell` -- process-global counters
are rewound first, so an artifact is a pure function of its cell no
matter which worker produced it or what that worker ran before.
Artifacts are written atomically (temp file + ``os.replace``) under
``<out>/<name>-<spec_hash>/runs/<run_id>.json``; a killed worker leaves
either a complete artifact or none (a stray temp file is ignored and a
truncated one fails validation), which is what makes ``resume=True``
safe: valid artifacts are skipped, missing or corrupt ones are re-run,
and the resumed sweep's artifact set is byte-identical to an
uninterrupted one.

Workers default to the ``fork`` start method where the platform offers
it (cheap, and safe for a pure-python simulator) and fall back to
``spawn`` elsewhere; either way the merged report is byte-identical to a
serial in-process run, which the fleet-determinism battery pins.  When
using ``spawn`` (or calling the engine from your own script), the usual
multiprocessing rule applies: guard the driver with
``if __name__ == "__main__":``.
"""

from __future__ import annotations

import dataclasses
import json
import multiprocessing
import os
import shutil
import traceback
from pathlib import Path
from typing import Any, Callable, Optional

from .spec import (RunCell, SweepError, SweepSpec, canonical_json,
                   sha256_hex)
from .targets import run_target

__all__ = ["ARTIFACT_SCHEMA_VERSION", "SweepEngine", "SweepStatus",
           "execute_cell", "write_artifact", "load_artifact", "sweep_dir",
           "runs_dir"]

ARTIFACT_SCHEMA_VERSION = 1


def sweep_dir(out_root: str | Path, spec: SweepSpec) -> Path:
    """Content-addressed sweep directory: edits to a spec never collide
    with artifacts of the old spec."""
    return Path(out_root) / f"{spec.name}-{spec.spec_hash}"


def runs_dir(out_root: str | Path, spec: SweepSpec) -> Path:
    return sweep_dir(out_root, spec) / "runs"


def artifact_path(run_directory: Path, cell: RunCell) -> Path:
    return run_directory / f"{cell.run_id}.json"


def execute_cell(cell: RunCell) -> dict:
    """Run one cell and return its artifact dict (not yet written)."""
    result = run_target(cell.target, cell.params_dict())
    return {
        "schema_version": ARTIFACT_SCHEMA_VERSION,
        "cell_id": cell.cell_id,
        "run_id": cell.run_id,
        "target": cell.target,
        "params": cell.params_dict(),
        "result": result,
        "result_sha256": sha256_hex(canonical_json(result)),
    }


def write_artifact(run_directory: Path, artifact: dict) -> Path:
    """Atomically persist one artifact; returns its final path."""
    final = run_directory / f"{artifact['run_id']}.json"
    temp = run_directory / f".{artifact['run_id']}.tmp.{os.getpid()}"
    temp.write_text(canonical_json(artifact), encoding="utf-8")
    os.replace(temp, final)
    return final


def load_artifact(run_directory: Path, cell: RunCell) -> Optional[dict]:
    """Load and validate one artifact; ``None`` if absent or invalid.

    Validation covers the full resume contract: parseable JSON, matching
    schema version, run/cell identity, the exact cell params, and a
    recomputed result digest -- a truncated or hand-edited artifact fails
    here and the cell is re-run.
    """
    path = artifact_path(run_directory, cell)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(data, dict):
        return None
    if data.get("schema_version") != ARTIFACT_SCHEMA_VERSION:
        return None
    if data.get("run_id") != cell.run_id or \
            data.get("cell_id") != cell.cell_id:
        return None
    if data.get("target") != cell.target or \
            data.get("params") != cell.params_dict():
        return None
    result = data.get("result")
    if result is None or \
            data.get("result_sha256") != sha256_hex(canonical_json(result)):
        return None
    return data


def _worker_run(payload: tuple[str, tuple, str]) -> tuple[str, str]:
    """Pool entry point: run one cell, persist its artifact.

    Returns ``(cell_id, "")`` on success or ``(cell_id, traceback)`` on
    failure; exceptions never cross the pool boundary, so one failed run
    does not tear down the others mid-write.
    """
    target, params, run_directory = payload
    cell = RunCell(target=target, params=params)
    try:
        artifact = execute_cell(cell)
        write_artifact(Path(run_directory), artifact)
        return (cell.cell_id, "")
    except Exception:
        return (cell.cell_id, traceback.format_exc())


@dataclasses.dataclass
class SweepStatus:
    """What one :meth:`SweepEngine.run` invocation did."""

    spec_hash: str
    directory: Path
    selected: list[str]        # cell ids in the (filtered) matrix
    executed: list[str]        # cell ids run by this invocation
    resumed: list[str]         # cell ids skipped: valid artifact on disk
    invalidated: list[str]     # cell ids whose stale artifact was re-run
    pending: list[str]         # cell ids still missing (limit cut them)

    @property
    def complete(self) -> bool:
        return not self.pending


class SweepEngine:
    """Expand a spec and drive its runs across worker processes."""

    def __init__(self, spec: SweepSpec, out_root: str | Path,
                 workers: int = 1, resume: bool = False,
                 cell_filter: Optional[str] = None,
                 limit: Optional[int] = None,
                 shuffle_seed: Optional[int] = None,
                 start_method: Optional[str] = None):
        if workers < 1:
            raise SweepError("workers must be >= 1")
        if limit is not None and limit < 1:
            raise SweepError("limit must be >= 1")
        available = multiprocessing.get_all_start_methods()
        if start_method is None:
            start_method = "fork" if "fork" in available else "spawn"
        elif start_method not in available:
            raise SweepError(f"start method {start_method!r} not available "
                             f"here (choose from {sorted(available)})")
        self.spec = spec
        self.out_root = Path(out_root)
        self.workers = workers
        self.resume = resume
        self.cell_filter = cell_filter
        self.limit = limit
        self.start_method = start_method
        #: dispatch-order override for the fleet-determinism battery: a
        #: keyed-hash shuffle of the pending cells proves the merged
        #: report does not depend on completion order
        self.shuffle_seed = shuffle_seed
        #: optional observer called as ``on_progress(cell_id, kind)`` with
        #: kind in {"run", "resume", "invalid"}; None stays silent
        self.on_progress: Optional[Callable[[str, str], None]] = None

    # -- matrix selection ---------------------------------------------------
    def selected_cells(self) -> list[RunCell]:
        cells = self.spec.cells()
        if self.cell_filter is not None:
            cells = [c for c in cells if self.cell_filter in c.cell_id]
            if not cells:
                raise SweepError(f"filter {self.cell_filter!r} matches no "
                                 f"cell of spec {self.spec.name!r}")
        return cells

    def _dispatch_order(self, cells: list[RunCell]) -> list[RunCell]:
        if self.shuffle_seed is None:
            return cells
        return sorted(cells, key=lambda c: sha256_hex(
            f"{self.shuffle_seed}/{c.run_id}"))

    # -- execution ----------------------------------------------------------
    def run(self) -> SweepStatus:
        cells = self.selected_cells()
        directory = sweep_dir(self.out_root, self.spec)
        run_directory = runs_dir(self.out_root, self.spec)
        if not self.resume and directory.exists():
            shutil.rmtree(directory)
        run_directory.mkdir(parents=True, exist_ok=True)
        # provenance: the spec that owns these artifacts, byte-stable
        (directory / "spec.json").write_text(
            canonical_json(self.spec.as_dict()), encoding="utf-8")

        resumed: list[str] = []
        invalidated: list[str] = []
        todo: list[RunCell] = []
        for cell in cells:
            if self.resume:
                existing = artifact_path(run_directory, cell)
                if load_artifact(run_directory, cell) is not None:
                    resumed.append(cell.cell_id)
                    if self.on_progress is not None:
                        self.on_progress(cell.cell_id, "resume")
                    continue
                if existing.exists():
                    invalidated.append(cell.cell_id)
                    if self.on_progress is not None:
                        self.on_progress(cell.cell_id, "invalid")
            todo.append(cell)

        todo = self._dispatch_order(todo)
        pending: list[str] = []
        if self.limit is not None and len(todo) > self.limit:
            pending = sorted(c.cell_id for c in todo[self.limit:])
            todo = todo[:self.limit]

        failures = self._execute(todo, run_directory)
        if failures:
            detail = "\n\n".join(f"{cell_id}:\n{tb}"
                                 for cell_id, tb in sorted(failures))
            raise SweepError(
                f"{len(failures)} run(s) failed:\n{detail}")

        return SweepStatus(
            spec_hash=self.spec.spec_hash,
            directory=directory,
            selected=[c.cell_id for c in cells],
            executed=[c.cell_id for c in todo],
            resumed=resumed,
            invalidated=invalidated,
            pending=pending)

    def _execute(self, todo: list[RunCell],
                 run_directory: Path) -> list[tuple[str, str]]:
        failures: list[tuple[str, str]] = []
        if self.workers == 1:
            for cell in todo:
                cell_id, error = _worker_run(
                    (cell.target, cell.params, str(run_directory)))
                if error:
                    failures.append((cell_id, error))
                elif self.on_progress is not None:
                    self.on_progress(cell_id, "run")
            return failures
        payloads = [(cell.target, cell.params, str(run_directory))
                    for cell in todo]
        if not payloads:
            return failures
        context = multiprocessing.get_context(self.start_method)
        with context.Pool(processes=min(self.workers, len(payloads))) \
                as pool:
            for cell_id, error in pool.imap_unordered(_worker_run, payloads):
                if error:
                    failures.append((cell_id, error))
                elif self.on_progress is not None:
                    self.on_progress(cell_id, "run")
        return failures
