"""Parallel sweep engine with deterministic merge (DESIGN.md §13).

A :class:`SweepSpec` describes a matrix of simulation runs -- seed
ranges, workload scales, policy knobs, chaos schedules, fast-path on/off
-- over the existing evidence harnesses (experiment cells, chaos
episodes, the overload episode, the open-loop bench stage).  The engine
expands the matrix into a deterministic run list, fans it across
``multiprocessing`` worker processes, writes one content-addressed JSON
artifact per run, and merges the artifacts into a single byte-stable
sweep report that is independent of worker count, completion order, and
``PYTHONHASHSEED``.  Completed artifacts are detected and skipped on
``resume=True``, so an interrupted sweep continues where it stopped and
the resumed report is identical to an uninterrupted one.
"""

from .engine import (ARTIFACT_SCHEMA_VERSION, SweepEngine, SweepStatus,
                     execute_cell, load_artifact, runs_dir, sweep_dir,
                     write_artifact)
from .merge import (REPORT_SCHEMA_VERSION, compare_reports, merge_sweep,
                    render_compare, render_report, write_report)
from .spec import (MatrixBlock, RunCell, SPEC_SCHEMA_VERSION, SweepError,
                   SweepSpec, canonical_json, load_spec, sha256_hex,
                   short_hash, spec_from_dict)
from .targets import TARGETS, jsonify, reset_process_counters, run_target

__all__ = [
    "SweepError", "SweepSpec", "MatrixBlock", "RunCell",
    "SPEC_SCHEMA_VERSION", "ARTIFACT_SCHEMA_VERSION",
    "REPORT_SCHEMA_VERSION",
    "canonical_json", "sha256_hex", "short_hash",
    "load_spec", "spec_from_dict",
    "SweepEngine", "SweepStatus", "execute_cell", "load_artifact",
    "write_artifact", "sweep_dir", "runs_dir",
    "merge_sweep", "write_report", "render_report",
    "compare_reports", "render_compare",
    "TARGETS", "jsonify", "reset_process_counters", "run_target",
]
