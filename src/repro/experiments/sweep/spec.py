"""SweepSpec: a declarative, deterministic run matrix.

A spec is a name plus a list of :class:`MatrixBlock`\\ s.  Each block
names a run target (see :mod:`repro.experiments.sweep.targets`), a
``base`` dict of fixed parameters, and an ``axes`` dict of parameter ->
value-list pairs; the block expands into the cross product of its axes
over the base.  The full matrix is the concatenation of every block's
cells, sorted by ``cell_id`` -- the expansion order is a pure function
of the spec, never of dict iteration order or ``PYTHONHASHSEED``.

Identity is content-addressed at both levels:

* ``RunCell.run_id`` -- hash of the canonical ``{target, params}`` JSON;
  the artifact filename.
* ``SweepSpec.spec_hash`` -- hash of the canonical spec dict; the sweep
  directory name, so editing a spec never collides with old artifacts.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
from pathlib import Path
from typing import Any, Optional

__all__ = ["SweepError", "MatrixBlock", "RunCell", "SweepSpec",
           "SPEC_SCHEMA_VERSION", "canonical_json", "sha256_hex",
           "short_hash", "load_spec", "spec_from_dict"]

SPEC_SCHEMA_VERSION = 1

#: parameter values must be JSON scalars: they live in cell ids, artifact
#: filenames, and report keys, all of which must render canonically
_SCALAR_TYPES = (str, int, float, bool, type(None))


class SweepError(RuntimeError):
    """Malformed spec, corrupt/missing artifact, or failed run."""


def canonical_json(obj: Any) -> str:
    """The one serialisation every hash, artifact, and report uses."""
    return json.dumps(obj, sort_keys=True, indent=2, ensure_ascii=True) + "\n"


def sha256_hex(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def short_hash(obj: Any) -> str:
    """12-hex content address of an object's canonical JSON."""
    return sha256_hex(canonical_json(obj))[:12]


def _format_value(value: Any) -> str:
    # JSON literals: True -> "true", "A" -> '"A"' -- unambiguous and
    # identical to what the canonical artifact JSON renders
    return json.dumps(value, sort_keys=True)


@dataclasses.dataclass(frozen=True)
class RunCell:
    """One run of the matrix: a target name plus concrete parameters."""

    target: str
    params: tuple[tuple[str, Any], ...]     # sorted (name, value) pairs

    @staticmethod
    def make(target: str, params: dict[str, Any]) -> "RunCell":
        return RunCell(target=target, params=tuple(sorted(params.items())))

    def params_dict(self) -> dict[str, Any]:
        return dict(self.params)

    @property
    def cell_id(self) -> str:
        """Human-readable identity: ``target[k=v,k=v,...]``."""
        inner = ",".join(f"{k}={_format_value(v)}" for k, v in self.params)
        return f"{self.target}[{inner}]"

    @property
    def run_id(self) -> str:
        """Content address; the artifact filename stem."""
        return short_hash({"target": self.target,
                           "params": self.params_dict()})


@dataclasses.dataclass(frozen=True)
class MatrixBlock:
    """One block of the matrix: target x base params x axis cross product."""

    target: str
    base: tuple[tuple[str, Any], ...]
    axes: tuple[tuple[str, tuple[Any, ...]], ...]    # sorted by axis name

    @staticmethod
    def make(target: str, base: Optional[dict[str, Any]] = None,
             axes: Optional[dict[str, Any]] = None) -> "MatrixBlock":
        base = dict(base or {})
        axes = {name: tuple(values) for name, values in (axes or {}).items()}
        overlap = sorted(set(base) & set(axes))
        if overlap:
            raise SweepError(f"block {target!r}: parameters {overlap} appear "
                             f"in both base and axes")
        for name, values in sorted(axes.items()):
            if not values:
                raise SweepError(f"block {target!r}: axis {name!r} is empty")
            if len(set(map(_format_value, values))) != len(values):
                raise SweepError(f"block {target!r}: axis {name!r} has "
                                 f"duplicate values")
        for name, value in itertools.chain(
                sorted(base.items()),
                ((n, v) for n, vals in sorted(axes.items()) for v in vals)):
            if not isinstance(value, _SCALAR_TYPES):
                raise SweepError(
                    f"block {target!r}: parameter {name!r} value {value!r} "
                    f"is not a JSON scalar")
        return MatrixBlock(target=target,
                           base=tuple(sorted(base.items())),
                           axes=tuple(sorted(axes.items())))

    def as_dict(self) -> dict:
        return {"target": self.target,
                "base": dict(self.base),
                "axes": {name: list(values) for name, values in self.axes}}

    def cells(self) -> list[RunCell]:
        """Row-major cross product over the (sorted) axis names."""
        names = [name for name, _ in self.axes]
        value_lists = [values for _, values in self.axes]
        cells = []
        for combo in itertools.product(*value_lists):
            params = dict(self.base)
            params.update(zip(names, combo))
            cells.append(RunCell.make(self.target, params))
        return cells


@dataclasses.dataclass(frozen=True)
class SweepSpec:
    """A named, content-addressed run matrix."""

    name: str
    blocks: tuple[MatrixBlock, ...]

    @staticmethod
    def make(name: str, blocks: list[MatrixBlock]) -> "SweepSpec":
        if not name or not name.replace("-", "").replace("_", "").isalnum():
            raise SweepError(f"spec name {name!r} must be a non-empty "
                             f"[-_a-zA-Z0-9] slug")
        if not blocks:
            raise SweepError("spec has no blocks")
        spec = SweepSpec(name=name, blocks=tuple(blocks))
        seen: dict[str, str] = {}
        for cell in spec.cells():
            if cell.run_id in seen:
                raise SweepError(f"duplicate cell {cell.cell_id} "
                                 f"(also expanded as {seen[cell.run_id]})")
            seen[cell.run_id] = cell.cell_id
        return spec

    def as_dict(self) -> dict:
        return {"schema_version": SPEC_SCHEMA_VERSION,
                "name": self.name,
                "blocks": [block.as_dict() for block in self.blocks]}

    @property
    def spec_hash(self) -> str:
        return short_hash(self.as_dict())

    def cells(self) -> list[RunCell]:
        """The full matrix, sorted by cell id (the canonical run order)."""
        cells = [cell for block in self.blocks for cell in block.cells()]
        cells.sort(key=lambda c: c.cell_id)
        return cells


def spec_from_dict(data: dict, source: str = "<dict>") -> SweepSpec:
    """Validate and build a :class:`SweepSpec` from parsed JSON."""
    if not isinstance(data, dict):
        raise SweepError(f"{source}: spec must be a JSON object")
    version = data.get("schema_version")
    if version != SPEC_SCHEMA_VERSION:
        raise SweepError(f"{source}: schema_version {version!r} "
                         f"(expected {SPEC_SCHEMA_VERSION})")
    unknown = sorted(set(data) - {"schema_version", "name", "blocks"})
    if unknown:
        raise SweepError(f"{source}: unknown spec keys {unknown}")
    name = data.get("name")
    if not isinstance(name, str):
        raise SweepError(f"{source}: spec name must be a string")
    raw_blocks = data.get("blocks")
    if not isinstance(raw_blocks, list) or not raw_blocks:
        raise SweepError(f"{source}: blocks must be a non-empty list")
    blocks = []
    for i, raw in enumerate(raw_blocks):
        if not isinstance(raw, dict):
            raise SweepError(f"{source}: block {i} must be an object")
        bad = sorted(set(raw) - {"target", "base", "axes"})
        if bad:
            raise SweepError(f"{source}: block {i} has unknown keys {bad}")
        target = raw.get("target")
        if not isinstance(target, str):
            raise SweepError(f"{source}: block {i} needs a string target")
        base = raw.get("base", {})
        axes = raw.get("axes", {})
        if not isinstance(base, dict) or not isinstance(axes, dict):
            raise SweepError(f"{source}: block {i} base/axes must be objects")
        for axis, values in sorted(axes.items()):
            if not isinstance(values, list):
                raise SweepError(f"{source}: block {i} axis {axis!r} must "
                                 f"be a list of values")
        blocks.append(MatrixBlock.make(target, base, axes))
    return SweepSpec.make(name, blocks)


def load_spec(path: str | Path) -> SweepSpec:
    """Load a spec from a JSON file."""
    path = Path(path)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise SweepError(f"spec file not found: {path}")
    except json.JSONDecodeError as exc:
        raise SweepError(f"{path}: not valid JSON ({exc})")
    return spec_from_dict(data, source=str(path))
