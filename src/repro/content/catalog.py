"""Synthetic web-site catalog generation.

The evaluation workloads (§5.1) "model the Web server workload
characterization (e.g., file size, request distribution, file popularity)
published in papers [9,10,27]" -- Arlitt & Williamson 1996, Arlitt & Jin
1999, and Barford & Crovella 1998.  This module generates a site whose
*content inventory* reproduces the invariants those papers report:

* heavy-tailed file sizes (lognormal body, Pareto tail) with a small number
  of very large multimedia files holding most of the bytes;
* a realistic type mix (mostly images and HTML by count);
* a document tree organized by content type, the way 1990s sites were laid
  out (/cgi-bin, /images, /video, ...), which is also what makes the paper's
  partition-by-type placement natural to express.

Request *popularity* is a workload property, not a catalog property, and
lives in :mod:`repro.workload`.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Iterator, Optional

from ..sim.rng import LognormalSampler, ParetoSampler, RngStream
from .model import ContentItem, ContentType, Priority

__all__ = ["TypeMix", "SiteCatalog", "generate_catalog", "paper_catalog"]


@dataclasses.dataclass(frozen=True)
class TypeMix:
    """Fraction of *objects* of each type in the site inventory."""

    html: float = 0.27
    image: float = 0.60
    cgi: float = 0.0
    asp: float = 0.0
    video: float = 0.02
    audio: float = 0.01

    def __post_init__(self):
        total = (self.html + self.image + self.cgi + self.asp +
                 self.video + self.audio)
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"type mix must sum to 1.0, got {total}")
        for name, frac in self.as_dict().items():
            if frac < 0:
                raise ValueError(f"negative fraction for {name}")

    def as_dict(self) -> dict[str, float]:
        return {"html": self.html, "image": self.image, "cgi": self.cgi,
                "asp": self.asp, "video": self.video, "audio": self.audio}


#: Workload A (§5.1): static content only.
STATIC_MIX = TypeMix(html=0.30, image=0.64, cgi=0.0, asp=0.0,
                     video=0.04, audio=0.02)

#: Workload B (§5.1): "includes a significant amount of dynamic content
#: (e.g. CGI and ASP)".
DYNAMIC_MIX = TypeMix(html=0.24, image=0.54, cgi=0.09, asp=0.08,
                      video=0.03, audio=0.02)

_TYPE_DIRS = {
    ContentType.HTML: ("docs", "pages", "products", "news"),
    ContentType.IMAGE: ("images", "icons", "banners"),
    ContentType.CGI: ("cgi-bin",),
    ContentType.ASP: ("asp", "shop"),
    ContentType.VIDEO: ("video",),
    ContentType.AUDIO: ("audio",),
}

_TYPE_EXT = {
    ContentType.HTML: ".html",
    ContentType.IMAGE: ".gif",
    ContentType.CGI: ".cgi",
    ContentType.ASP: ".asp",
    ContentType.VIDEO: ".mpg",
    ContentType.AUDIO: ".wav",
}


class SiteCatalog:
    """The complete content inventory of a simulated web site."""

    def __init__(self, items: Iterable[ContentItem] = ()):
        self._items: dict[str, ContentItem] = {}
        for item in items:
            self.add(item)

    # -- mutation -------------------------------------------------------------
    def add(self, item: ContentItem) -> None:
        if item.path in self._items:
            raise ValueError(f"duplicate content path {item.path!r}")
        self._items[item.path] = item

    def remove(self, path: str) -> ContentItem:
        try:
            return self._items.pop(path)
        except KeyError:
            raise KeyError(f"no content at {path!r}") from None

    # -- access ---------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[ContentItem]:
        return iter(self._items.values())

    def __contains__(self, path: str) -> bool:
        return path in self._items

    def get(self, path: str) -> ContentItem:
        try:
            return self._items[path]
        except KeyError:
            raise KeyError(f"no content at {path!r}") from None

    def paths(self) -> list[str]:
        return list(self._items)

    def by_type(self, ctype: ContentType) -> list[ContentItem]:
        return [i for i in self._items.values() if i.ctype is ctype]

    def dynamic_items(self) -> list[ContentItem]:
        return [i for i in self._items.values() if i.ctype.is_dynamic]

    def static_items(self) -> list[ContentItem]:
        return [i for i in self._items.values() if i.ctype.is_static]

    # -- statistics -------------------------------------------------------------
    @property
    def total_bytes(self) -> int:
        return sum(i.size_bytes for i in self._items.values())

    def type_counts(self) -> dict[ContentType, int]:
        counts = {t: 0 for t in ContentType}
        for item in self._items.values():
            counts[item.ctype] += 1
        return counts

    def large_file_stats(self, threshold: int = 64 * 1024) -> dict:
        """The Arlitt & Jin style statistic the paper quotes in §1.2:
        what fraction of files exceed ``threshold`` and what fraction of
        all bytes they hold."""
        total_bytes = self.total_bytes
        large = [i for i in self._items.values() if i.size_bytes > threshold]
        large_bytes = sum(i.size_bytes for i in large)
        n = len(self._items)
        return {
            "large_count": len(large),
            "large_fraction": len(large) / n if n else 0.0,
            "large_bytes": large_bytes,
            "byte_fraction": large_bytes / total_bytes if total_bytes else 0.0,
        }


def _size_sampler_for(ctype: ContentType, rng: RngStream):
    """Per-type size models (bytes), calibrated to late-90s web content."""
    sub = rng.substream(f"size/{ctype.value}")
    if ctype is ContentType.HTML:
        body = LognormalSampler(mu=8.3, sigma=1.0, rng=sub)     # ~4 KB median
        return lambda: max(256, min(512 * 1024, int(body.sample())))
    if ctype is ContentType.IMAGE:
        body = LognormalSampler(mu=8.55, sigma=1.2, rng=sub)    # ~5.2 KB median
        return lambda: max(128, min(2 * 1024 * 1024, int(body.sample())))
    if ctype in (ContentType.CGI, ContentType.ASP):
        body = LognormalSampler(mu=8.3, sigma=0.8, rng=sub)     # ~4 KB responses
        return lambda: max(256, min(256 * 1024, int(body.sample())))
    if ctype is ContentType.VIDEO:
        tail = ParetoSampler(alpha=1.1, x_min=512 * 1024, rng=sub)
        return lambda: min(16 * 1024 * 1024, int(tail.sample()))
    # AUDIO
    tail = ParetoSampler(alpha=1.1, x_min=96 * 1024, rng=sub)
    return lambda: min(8 * 1024 * 1024, int(tail.sample()))


def _cpu_work_for(ctype: ContentType, rng: RngStream) -> float:
    """Seconds of CPU on the reference 350 MHz node for dynamic content.

    CGI forks a process per request (expensive); ASP runs in-process.
    Iyengar et al. (the paper's [6]) report dynamic requests costing one
    to two orders of magnitude more than static ones.
    """
    if ctype is ContentType.CGI:
        return rng.uniform(0.012, 0.040)
    if ctype is ContentType.ASP:
        return rng.uniform(0.005, 0.020)
    return 0.0


def generate_catalog(n_objects: int,
                     rng: Optional[RngStream] = None,
                     mix: TypeMix = STATIC_MIX,
                     critical_fraction: float = 0.02,
                     mutable_fraction: float = 0.03) -> SiteCatalog:
    """Generate a synthetic site of ``n_objects`` content items.

    Items are spread over a per-type directory layout with nested
    subdirectories, sized by per-type heavy-tailed models, with a small
    fraction marked CRITICAL (shopping/product pages) and mutable.
    """
    if n_objects < 1:
        raise ValueError("n_objects must be >= 1")
    rng = rng or RngStream(0, "catalog")
    structure_rng = rng.substream("structure")
    flags_rng = rng.substream("flags")
    work_rng = rng.substream("work")

    # Deterministic per-type object counts (largest remainder rounding).
    fractions = mix.as_dict()
    counts = {name: int(frac * n_objects) for name, frac in fractions.items()}
    shortfall = n_objects - sum(counts.values())
    remainders = sorted(fractions,
                        key=lambda k: fractions[k] * n_objects - counts[k],
                        reverse=True)
    for name in remainders[:shortfall]:
        counts[name] += 1

    catalog = SiteCatalog()
    samplers = {}
    for name, count in counts.items():
        if count == 0:
            continue
        ctype = ContentType(name if name != "image" else "image")
        samplers.setdefault(ctype, _size_sampler_for(ctype, rng))
        dirs = _TYPE_DIRS[ctype]
        for i in range(count):
            top = dirs[i % len(dirs)]
            # two levels of subdirectories keep directory fan-out realistic
            sub = i // (len(dirs) * 40)
            subdir = f"/d{sub:03d}" if sub else ""
            path = f"/{top}{subdir}/{ctype.value}{i:05d}{_TYPE_EXT[ctype]}"
            size = samplers[ctype]()
            critical = (structure_rng.random() < critical_fraction or
                        top in ("products", "shop"))
            item = ContentItem(
                path=path,
                size_bytes=size,
                ctype=ctype,
                priority=Priority.CRITICAL if critical else Priority.NORMAL,
                mutable=flags_rng.random() < mutable_fraction,
                cpu_work=_cpu_work_for(ctype, work_rng),
            )
            catalog.add(item)
    return catalog


def paper_catalog(rng: Optional[RngStream] = None,
                  dynamic: bool = False) -> SiteCatalog:
    """The catalog at the scale of the authors' production site (§5.2):
    "Our Web site contains about 8700 Web objects."
    """
    return generate_catalog(8700, rng=rng,
                            mix=DYNAMIC_MIX if dynamic else STATIC_MIX)
