"""The logical document tree: one coherent view over scattered content.

§3.2: "We first extended the remote console to produce a single, coherent
view of the Web document tree, comprised of portions that actually reside on
several different server nodes.  The remote console provides a file manager
interface containing methods for inserting, deleting, and renaming files or
directories."

This module is that view's data structure.  Every file node records *which
backend nodes currently hold a copy*; directory operations cascade to their
subtrees.  The management console (:mod:`repro.mgmt.console`) wraps this with
the operations that also propagate changes to brokers and the URL table.
"""

from __future__ import annotations

from typing import Iterator, Optional

from .model import ContentItem

__all__ = ["DocTree", "FileNode", "DirectoryNode", "DocTreeError"]


class DocTreeError(Exception):
    """An invalid document-tree operation (missing path, duplicate, ...)."""


class FileNode:
    """A leaf: one content item plus the set of backends holding copies."""

    __slots__ = ("item", "locations")

    def __init__(self, item: ContentItem, locations: Optional[set[str]] = None):
        self.item = item
        self.locations: set[str] = set(locations or ())

    @property
    def replicated(self) -> bool:
        return len(self.locations) > 1


class DirectoryNode:
    """An internal node mapping child names to nodes."""

    __slots__ = ("children",)

    def __init__(self):
        self.children: dict[str, "DirectoryNode | FileNode"] = {}


def _split(path: str) -> list[str]:
    if not path.startswith("/"):
        raise DocTreeError(f"path must be absolute: {path!r}")
    return [seg for seg in path.split("/") if seg]


class DocTree:
    """A mutable hierarchical namespace of directories and files."""

    def __init__(self):
        self.root = DirectoryNode()

    # -- navigation ---------------------------------------------------------
    def _descend(self, segments: list[str],
                 create: bool = False) -> DirectoryNode:
        node = self.root
        for seg in segments:
            child = node.children.get(seg)
            if child is None:
                if not create:
                    raise DocTreeError(f"no such directory: {'/'.join(segments)}")
                child = DirectoryNode()
                node.children[seg] = child
            if isinstance(child, FileNode):
                raise DocTreeError(f"{seg!r} is a file, not a directory")
            node = child
        return node

    def lookup(self, path: str) -> "DirectoryNode | FileNode":
        segs = _split(path)
        if not segs:
            return self.root
        parent = self._descend(segs[:-1])
        try:
            return parent.children[segs[-1]]
        except KeyError:
            raise DocTreeError(f"no such path: {path}") from None

    def file(self, path: str) -> FileNode:
        node = self.lookup(path)
        if not isinstance(node, FileNode):
            raise DocTreeError(f"{path} is a directory")
        return node

    def exists(self, path: str) -> bool:
        try:
            self.lookup(path)
            return True
        except DocTreeError:
            return False

    # -- mutation -----------------------------------------------------------
    def insert(self, item: ContentItem,
               locations: Optional[set[str]] = None) -> FileNode:
        """Insert a file at ``item.path``, creating parent directories."""
        segs = _split(item.path)
        if not segs:
            raise DocTreeError("cannot insert at the root")
        parent = self._descend(segs[:-1], create=True)
        if segs[-1] in parent.children:
            raise DocTreeError(f"path already exists: {item.path}")
        node = FileNode(item, locations)
        parent.children[segs[-1]] = node
        return node

    def mkdir(self, path: str) -> DirectoryNode:
        segs = _split(path)
        return self._descend(segs, create=True)

    def delete(self, path: str) -> "DirectoryNode | FileNode":
        """Remove a file or an entire directory subtree."""
        segs = _split(path)
        if not segs:
            raise DocTreeError("cannot delete the root")
        parent = self._descend(segs[:-1])
        try:
            return parent.children.pop(segs[-1])
        except KeyError:
            raise DocTreeError(f"no such path: {path}") from None

    def rename(self, old: str, new: str) -> None:
        """Move a file/directory to a new absolute path.

        Renaming rewrites the ``path`` of every file item in the moved
        subtree so the logical names stay consistent.
        """
        if self.exists(new):
            raise DocTreeError(f"target already exists: {new}")
        node = self.lookup(old)
        self.delete(old)
        new_segs = _split(new)
        if not new_segs:
            raise DocTreeError("cannot rename to the root")
        parent = self._descend(new_segs[:-1], create=True)
        parent.children[new_segs[-1]] = node
        self._repath(node, new)

    def _repath(self, node: "DirectoryNode | FileNode", path: str) -> None:
        if isinstance(node, FileNode):
            node.item.path = path
            return
        for name, child in node.children.items():
            self._repath(child, f"{path}/{name}")

    # -- traversal ------------------------------------------------------------
    def walk(self, path: str = "/") -> Iterator[tuple[str, FileNode]]:
        """Yield every (path, FileNode) under ``path``, depth-first."""
        start = self.lookup(path)
        prefix = "" if path == "/" else path.rstrip("/")
        if isinstance(start, FileNode):
            yield path, start
            return
        stack: list[tuple[str, DirectoryNode]] = [(prefix, start)]
        while stack:
            base, dirnode = stack.pop()
            for name in sorted(dirnode.children):
                child = dirnode.children[name]
                child_path = f"{base}/{name}"
                if isinstance(child, FileNode):
                    yield child_path, child
                else:
                    stack.append((child_path, child))

    def list_dir(self, path: str = "/") -> list[str]:
        node = self.lookup(path)
        if isinstance(node, FileNode):
            raise DocTreeError(f"{path} is a file")
        return sorted(node.children)

    def files(self) -> list[str]:
        return [p for p, _node in self.walk()]

    def locations_of(self, path: str) -> set[str]:
        return set(self.file(path).locations)

    def render(self, path: str = "/", max_entries: int = 200) -> str:
        """A text rendering of the tree (what the GUI console displayed)."""
        lines = []
        entries = list(self.walk(path))
        for i, (file_path, node) in enumerate(entries):
            if i >= max_entries:
                lines.append(f"... ({len(entries) - max_entries} more)")
                break
            locs = ",".join(sorted(node.locations)) or "-"
            lines.append(f"{file_path}  [{node.item.ctype.value}, "
                         f"{node.item.size_bytes}B, @{locs}]")
        return "\n".join(lines)
