"""Content items and their service-cost classification.

The paper's whole premise is that *content is heterogeneous*: static pages,
CGI/ASP dynamic content, and multimedia have different resource appetites,
and some documents are more important to the site owner than others.  This
module is the vocabulary for that: content types with the paper's load
weights (§3.3) and an explicit priority scale (§1.2 "not all content is
equally important").
"""

from __future__ import annotations

import dataclasses
import enum

__all__ = ["ContentType", "Priority", "ContentItem", "LoadWeights"]


@dataclasses.dataclass(frozen=True, slots=True)
class LoadWeights:
    """The per-request load weights from §3.3 of the paper."""

    cpu: float
    disk: float

    @property
    def total(self) -> float:
        return self.cpu + self.disk


#: §3.3: "For a request to the static content, load_CPU is set to one and
#: load_Disk to nine, since disk activity is the dominant factor...  For the
#: request to a dynamic content, load_CPU is set to ten and load_Disk to five."
STATIC_WEIGHTS = LoadWeights(cpu=1.0, disk=9.0)
DYNAMIC_WEIGHTS = LoadWeights(cpu=10.0, disk=5.0)


class ContentType(enum.Enum):
    """The content classes the paper's placement policies distinguish."""

    HTML = "html"
    IMAGE = "image"
    CGI = "cgi"
    ASP = "asp"
    VIDEO = "video"
    AUDIO = "audio"

    # Members are singletons, so the identity hash is correct and C-speed;
    # ``Enum.__hash__`` is a Python-level call that shows up on every
    # per-request ``class_meters[ctype]`` lookup.  Ordered observables
    # never iterate sets of members (determinism rules require sorting),
    # so an id-based hash is safe.
    __hash__ = object.__hash__

    @property
    def is_dynamic(self) -> bool:
        """Dynamic content is *generated* per request (CGI scripts, ASP)."""
        return self in (ContentType.CGI, ContentType.ASP)

    @property
    def is_multimedia(self) -> bool:
        """Large streaming objects with real-time delivery requirements."""
        return self in (ContentType.VIDEO, ContentType.AUDIO)

    @property
    def is_static(self) -> bool:
        return not self.is_dynamic

    @property
    def load_weights(self) -> LoadWeights:
        """The §3.3 load weights for a request to this type."""
        return DYNAMIC_WEIGHTS if self.is_dynamic else STATIC_WEIGHTS

    @classmethod
    def from_path(cls, path: str) -> "ContentType":
        """Classify a URL path by its extension / directory convention."""
        lower = path.lower()
        if "/cgi-bin/" in lower or lower.endswith(".cgi"):
            return cls.CGI
        if lower.endswith(".asp"):
            return cls.ASP
        if lower.endswith((".mpg", ".mpeg", ".avi", ".mov", ".rm")):
            return cls.VIDEO
        if lower.endswith((".wav", ".mp3", ".au", ".ra")):
            return cls.AUDIO
        if lower.endswith((".gif", ".jpg", ".jpeg", ".png", ".bmp", ".ico")):
            return cls.IMAGE
        return cls.HTML


class Priority(enum.IntEnum):
    """Administrative importance of a document (§1.2: critical pages such as
    product lists or shopping-related pages deserve more resources)."""

    CRITICAL = 0
    NORMAL = 1
    LOW = 2


@dataclasses.dataclass(slots=True)
class ContentItem:
    """One web object: the unit of placement, routing, and replication."""

    path: str
    size_bytes: int
    ctype: ContentType
    priority: Priority = Priority.NORMAL
    mutable: bool = False   # §4: mutable documents need consistency control
    cpu_work: float = 0.0   # seconds of CPU at the reference (350 MHz) node
                            # for dynamic content; 0 for plain static files

    def __post_init__(self):
        if not self.path.startswith("/"):
            raise ValueError(f"content path must be absolute: {self.path!r}")
        if self.size_bytes < 0:
            raise ValueError("size_bytes must be non-negative")
        if self.cpu_work < 0:
            raise ValueError("cpu_work must be non-negative")

    @property
    def is_large(self) -> bool:
        """The paper's "large file" cut-off (64 KB, from Arlitt & Jin)."""
        return self.size_bytes > 64 * 1024

    @property
    def load_weights(self) -> LoadWeights:
        return self.ctype.load_weights

    def __hash__(self) -> int:
        return hash(self.path)
