"""Content model: items, synthetic site catalogs, and the document tree."""

from .catalog import (DYNAMIC_MIX, STATIC_MIX, SiteCatalog, TypeMix,
                      generate_catalog, paper_catalog)
from .doctree import DirectoryNode, DocTree, DocTreeError, FileNode
from .model import (DYNAMIC_WEIGHTS, STATIC_WEIGHTS, ContentItem, ContentType,
                    LoadWeights, Priority)

__all__ = [
    "ContentItem", "ContentType", "Priority", "LoadWeights",
    "STATIC_WEIGHTS", "DYNAMIC_WEIGHTS",
    "SiteCatalog", "TypeMix", "generate_catalog", "paper_catalog",
    "STATIC_MIX", "DYNAMIC_MIX",
    "DocTree", "FileNode", "DirectoryNode", "DocTreeError",
]
