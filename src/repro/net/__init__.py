"""Network substrate: packets, TCP endpoints, HTTP messages, and the LAN."""

from .http import (HttpMethod, HttpRequest, HttpResponse, HttpVersion,
                   parent_dirs, split_path)
from .lan import Lan, Nic
from .packet import Address, Segment, TcpFlags, rewrite
from .tcp import Host, Network, ProtocolError, TcpSocket, TcpState

__all__ = [
    "Address", "Segment", "TcpFlags", "rewrite",
    "Network", "Host", "TcpSocket", "TcpState", "ProtocolError",
    "HttpRequest", "HttpResponse", "HttpMethod", "HttpVersion",
    "split_path", "parent_dirs",
    "Nic", "Lan",
]
