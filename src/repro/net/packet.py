"""Packet model: IP/TCP headers and segments.

The content-aware distributor of the paper operates *below* the backend's
TCP stack: it records TCP state from observed packets in its mapping table
and relays packets between the client connection and a pre-forked backend
connection by rewriting IP addresses, ports, and sequence numbers.  To test
that mechanism faithfully we need an explicit packet representation.

Only the fields the mechanism reads or rewrites are modelled: addresses,
ports, sequence/acknowledgement numbers, flags, and payload length.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Any, Optional

__all__ = ["TcpFlags", "Address", "Segment", "rewrite",
           "SYN_FLAG", "ACK_FLAG", "FIN_FLAG", "RST_FLAG", "PSH_FLAG"]


class TcpFlags(enum.IntFlag):
    """The TCP control flags the splicing state machine cares about."""

    NONE = 0
    SYN = 0x02
    ACK = 0x10
    FIN = 0x01
    RST = 0x04
    PSH = 0x08


#: Plain-int values of the flag bits.  ``IntFlag.__and__``/``__or__`` are
#: Python-level calls that dominated the packet hot path (~70k profiled
#: stdlib frames per bench run); every flag test and every emit-site
#: combination below uses these C-speed masks instead.  :class:`TcpFlags`
#: stays the public, serialized representation -- it *is* an int, so the
#: two are interchangeable in comparisons and constructors.
SYN_FLAG = int(TcpFlags.SYN)
ACK_FLAG = int(TcpFlags.ACK)
FIN_FLAG = int(TcpFlags.FIN)
RST_FLAG = int(TcpFlags.RST)
PSH_FLAG = int(TcpFlags.PSH)


@dataclasses.dataclass(frozen=True, slots=True)
class Address:
    """An (IP, port) endpoint identifier."""

    ip: str
    port: int
    #: memoised ``str(self)`` -- rebuilt f-strings dominated the trace and
    #: mapping-table hot paths; excluded from eq/hash/repr
    _str: Optional[str] = dataclasses.field(
        default=None, init=False, repr=False, compare=False)

    def __str__(self) -> str:
        s = self._str
        if s is None:
            s = f"{self.ip}:{self.port}"
            object.__setattr__(self, "_str", s)
        return s


@dataclasses.dataclass(slots=True)
class Segment:
    """One TCP segment.

    ``payload`` carries a parsed object (an HTTP request/response or a chunk
    marker) rather than raw bytes; ``payload_len`` is the simulated wire
    size in bytes and is what sequence-number arithmetic uses.
    """

    src: Address
    dst: Address
    seq: int
    ack: int
    #: int bitmask; hot emit sites pass precomputed plain-int combinations
    #: (C-speed flag tests), while :class:`TcpFlags` values are accepted
    #: unchanged (IntFlag is an int)
    flags: int
    payload_len: int = 0
    payload: Any = None
    #: number of wire segments this object stands for.  The kernel fast
    #: path (DESIGN.md §11) coalesces an MSS-fragmented burst into one
    #: aggregated segment carrying the burst's total ``payload_len`` and
    #: ``frags``; ACKs and relays of an aggregated segment propagate the
    #: same count so ``Network.segments_sent`` stays byte-identical to
    #: the segment-at-a-time path
    frags: int = 1
    #: memoised flow key; segments are treated as immutable after creation
    #: (rewrite() returns copies), so caching the pair is safe
    _flow: Optional[tuple] = dataclasses.field(
        default=None, init=False, repr=False, compare=False)

    @property
    def is_syn(self) -> bool:
        return bool(self.flags & SYN_FLAG)

    @property
    def is_ack(self) -> bool:
        return bool(self.flags & ACK_FLAG)

    @property
    def is_fin(self) -> bool:
        return bool(self.flags & FIN_FLAG)

    @property
    def is_rst(self) -> bool:
        return bool(self.flags & RST_FLAG)

    def seq_space(self) -> int:
        """Sequence-number space consumed (SYN and FIN count as one each)."""
        space = self.payload_len
        if self.flags & SYN_FLAG:
            space += 1
        if self.flags & FIN_FLAG:
            space += 1
        return space

    def flow_id(self) -> tuple[Address, Address]:
        """The (src, dst) pair identifying this direction of the flow."""
        f = self._flow
        if f is None:
            f = (self.src, self.dst)
            self._flow = f
        return f

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        names = [f.name for f in TcpFlags if f and self.flags & f]
        return (f"Segment({self.src}->{self.dst} seq={self.seq} "
                f"ack={self.ack} [{'|'.join(names) or '-'}] "
                f"len={self.payload_len})")


def rewrite(segment: Segment, *,
            src: Optional[Address] = None,
            dst: Optional[Address] = None,
            seq_delta: int = 0,
            ack_delta: int = 0) -> Segment:
    """Return a copy of ``segment`` with rewritten headers.

    This is the distributor's relaying primitive: change addresses to splice
    the client flow onto the pre-forked backend flow and shift sequence
    numbers by the offset between the two connections' initial sequence
    numbers.  Payload is shared, not copied -- rewriting is header surgery.
    """
    return Segment(
        src=src if src is not None else segment.src,
        dst=dst if dst is not None else segment.dst,
        seq=segment.seq + seq_delta,
        ack=segment.ack + ack_delta,
        flags=segment.flags,
        payload_len=segment.payload_len,
        payload=segment.payload,
        frags=segment.frags,
    )
