"""A simplified TCP implementation over the simulated network.

This exists so the content-aware distributor's *packet-level* mechanism --
handshake interception, connection binding, header rewriting, and the
FIN_RECEIVED/HALF_CLOSED teardown from §2.2 of the paper -- can be exercised
against real protocol state rather than hand-waved.

Simplifications (documented, deliberate):

* The network is reliable and delivers in order, so there is no
  retransmission, no congestion control, and no window management.
  Unexpected sequence numbers therefore indicate *bugs* and raise
  :class:`ProtocolError` instead of being silently dropped.
* TIME_WAIT collapses to CLOSED immediately (no 2*MSL timer).
* Data segments are not fragmented to an MSS here; higher layers decide
  segment sizes.
"""

from __future__ import annotations

import enum
import itertools
from typing import Any, Callable, Optional

from ..sim import SimEvent, Simulator, Store
from .packet import (ACK_FLAG, FIN_FLAG, PSH_FLAG, RST_FLAG, SYN_FLAG,
                     Address, Segment, TcpFlags)

__all__ = ["ProtocolError", "TcpState", "Network", "Host", "TcpSocket"]

#: Emit-site flag combinations, precomputed to plain ints at import time:
#: ``TcpFlags.ACK | TcpFlags.PSH`` at every send was a pair of Python-level
#: ``IntFlag`` calls on the hot path.  Segments built from these are
#: bit-identical to the enum-built ones (IntFlag is an int).
_SYN = SYN_FLAG
_ACK = ACK_FLAG
_RST = RST_FLAG
_SYN_ACK = SYN_FLAG | ACK_FLAG
_ACK_PSH = ACK_FLAG | PSH_FLAG
_FIN_ACK = FIN_FLAG | ACK_FLAG


class ProtocolError(Exception):
    """A TCP endpoint received a segment its state cannot explain."""


class TcpState(enum.Enum):
    CLOSED = "CLOSED"
    LISTEN = "LISTEN"
    SYN_SENT = "SYN_SENT"
    SYN_RECEIVED = "SYN_RECEIVED"
    ESTABLISHED = "ESTABLISHED"
    FIN_WAIT_1 = "FIN_WAIT_1"
    FIN_WAIT_2 = "FIN_WAIT_2"
    CLOSE_WAIT = "CLOSE_WAIT"
    LAST_ACK = "LAST_ACK"
    TIME_WAIT = "TIME_WAIT"

    # Identity hash (members are singletons): the per-segment dispatch
    # table below otherwise pays the Python-level ``Enum.__hash__``.
    __hash__ = object.__hash__


_isn_counter = itertools.count(1000, 7919)  # deterministic, distinct ISNs


class Network:
    """Delivers segments between registered IP handlers with fixed latency."""

    def __init__(self, sim: Simulator, latency: float = 50e-6):
        self.sim = sim
        self.latency = latency
        self._handlers: dict[str, Callable[[Segment], None]] = {}
        self.segments_sent = 0
        #: multi-segment bursts collapsed to one aggregated segment by the
        #: kernel fast path (DESIGN.md §11); 0 on the segment-at-a-time path
        self.flow_forwards = 0

    def register(self, ip: str, handler: Callable[[Segment], None]) -> None:
        if ip in self._handlers:
            raise ValueError(f"IP {ip} already registered")
        self._handlers[ip] = handler

    def unregister(self, ip: str) -> None:
        self._handlers.pop(ip, None)

    def send(self, segment: Segment) -> None:
        """Schedule delivery of ``segment`` to its destination IP.

        An aggregated segment (``frags > 1``, fast path only) counts as
        the whole burst it stands for, keeping ``segments_sent``
        byte-identical between the fast and segment paths.
        """
        self.segments_sent += segment.frags
        handler = self._handlers.get(segment.dst.ip)
        if handler is None:
            return  # destination dark: packet silently dropped
        self.sim.schedule(self.latency, lambda: handler(segment))


class Host:
    """An endpoint machine: one IP, many sockets, a demultiplexer."""

    def __init__(self, net: Network, ip: str):
        self.net = net
        self.ip = ip
        self.sim = net.sim
        self._ephemeral = itertools.count(32768)
        self._listeners: dict[int, TcpSocket] = {}
        self._conns: dict[tuple[int, Address], TcpSocket] = {}
        net.register(ip, self._deliver)

    def socket(self, port: Optional[int] = None) -> "TcpSocket":
        """Create an unbound socket (ephemeral port unless given)."""
        if port is None:
            port = next(self._ephemeral)
        return TcpSocket(self, Address(self.ip, port))

    def listen(self, port: int,
               on_accept: Callable[["TcpSocket"], None]) -> "TcpSocket":
        """Open a listening socket; ``on_accept`` is called per connection."""
        sock = TcpSocket(self, Address(self.ip, port))
        sock.state = TcpState.LISTEN
        sock._on_accept = on_accept
        self._listeners[port] = sock
        return sock

    def _register_conn(self, sock: "TcpSocket") -> None:
        key = (sock.local.port, sock.remote)
        if key in self._conns:
            raise ProtocolError(f"duplicate connection {key}")
        self._conns[key] = sock

    def _unregister_conn(self, sock: "TcpSocket") -> None:
        self._conns.pop((sock.local.port, sock.remote), None)

    def _deliver(self, segment: Segment) -> None:
        sock = self._conns.get((segment.dst.port, segment.src))
        if sock is not None:
            sock._handle(segment)
            return
        listener = self._listeners.get(segment.dst.port)
        if listener is not None:
            listener._handle_listen(segment)
            return
        if not segment.is_rst:
            self.net.send(Segment(src=segment.dst, dst=segment.src,
                                  seq=segment.ack, ack=0,
                                  flags=_RST))


class TcpSocket:
    """One endpoint of a (simplified) TCP connection."""

    def __init__(self, host: Host, local: Address):
        self.host = host
        self.sim = host.sim
        self.net = host.net
        self.local = local
        self.remote: Optional[Address] = None
        self.state = TcpState.CLOSED
        self.isn = next(_isn_counter)
        self.snd_nxt = self.isn
        self.rcv_nxt = 0
        self.inbox: Store = Store(self.sim, name=f"inbox:{local}")
        self.closed_event: SimEvent = self.sim.event()
        self.closed_event.defuse()
        self.reset = False
        self._connect_event: Optional[SimEvent] = None
        self._on_accept: Optional[Callable[["TcpSocket"], None]] = None

    # -- user API -----------------------------------------------------------
    def connect(self, remote: Address) -> SimEvent:
        """Start the three-way handshake; yield the returned event."""
        if self.state is not TcpState.CLOSED:
            raise ProtocolError(f"connect() in state {self.state}")
        self.remote = remote
        self.host._register_conn(self)
        self.state = TcpState.SYN_SENT
        self._connect_event = self.sim.event()
        self._emit(_SYN)
        self.snd_nxt += 1
        return self._connect_event

    def send(self, payload, nbytes: int) -> None:
        """Send one data segment carrying ``payload`` of ``nbytes`` bytes."""
        if self.state not in (TcpState.ESTABLISHED, TcpState.CLOSE_WAIT):
            raise ProtocolError(f"send() in state {self.state}")
        if nbytes <= 0:
            raise ValueError("nbytes must be positive")
        self._emit(_ACK_PSH, payload_len=nbytes, payload=payload)
        self.snd_nxt += nbytes

    def send_data(self, payload, nbytes: int, mss: int = 1460) -> int:
        """Send ``nbytes`` fragmented to the MSS; returns segment count.

        Only the final segment carries ``payload`` (the parsed message
        object) -- the marker receivers and middleboxes use to recognize
        the last packet of an application message.

        On the kernel fast path (DESIGN.md §11) the whole burst collapses
        to one aggregated segment carrying ``frags=len(sizes)``: the
        flow-level splice fast-forward.  Sequence arithmetic, counters,
        and delivery time are identical (all fragments are emitted at the
        same instant and the network delivers with fixed latency); only
        the number of scheduled events changes.
        """
        if mss <= 0:
            raise ValueError("mss must be positive")
        if nbytes <= 0:
            raise ValueError("nbytes must be positive")
        full, rest = divmod(nbytes, mss)
        nsegs = full + (1 if rest else 0)
        if nsegs > 1 and self.sim.fast_path:
            if self.state not in (TcpState.ESTABLISHED, TcpState.CLOSE_WAIT):
                raise ProtocolError(f"send() in state {self.state}")
            self.net.flow_forwards += 1
            self._emit(_ACK_PSH, payload_len=nbytes,
                       payload=payload, frags=nsegs)
            self.snd_nxt += nbytes
            return nsegs
        sizes = [mss] * full + ([rest] if rest else [])
        for size in sizes[:-1]:
            self.send(None, size)
        self.send(payload, sizes[-1])
        return nsegs

    def recv_message(self, total_bytes: int) -> "SimEvent | None":
        """Convenience generator: collect fragments until ``total_bytes``
        have arrived; returns the final fragment's payload.  Use with
        ``yield from``."""
        received = 0
        payload = None
        while received < total_bytes:
            fragment, nbytes = yield self.recv()
            received += nbytes
            if fragment is not None:
                payload = fragment
        return payload

    def recv(self) -> SimEvent:
        """Yield the next (payload, nbytes) tuple delivered in order."""
        return self.inbox.get()

    def close(self) -> SimEvent:
        """Begin an orderly close; the returned event fires at CLOSED."""
        if self.state is TcpState.ESTABLISHED:
            self.state = TcpState.FIN_WAIT_1
            self._emit(_FIN_ACK)
            self.snd_nxt += 1
        elif self.state is TcpState.CLOSE_WAIT:
            self.state = TcpState.LAST_ACK
            self._emit(_FIN_ACK)
            self.snd_nxt += 1
        elif self.state is TcpState.CLOSED:
            if not self.closed_event.triggered:
                self.closed_event.succeed(self)
        else:
            raise ProtocolError(f"close() in state {self.state}")
        return self.closed_event

    def abort(self) -> None:
        """Send RST and drop straight to CLOSED."""
        if self.remote is not None and self.state not in (
                TcpState.CLOSED, TcpState.LISTEN):
            self._emit(_RST)
        self._become_closed()

    # -- internals ------------------------------------------------------------
    def _emit(self, flags: TcpFlags, payload_len: int = 0,
              payload=None, frags: int = 1) -> None:
        assert self.remote is not None
        self.net.send(Segment(src=self.local, dst=self.remote,
                              seq=self.snd_nxt, ack=self.rcv_nxt,
                              flags=flags, payload_len=payload_len,
                              payload=payload, frags=frags))

    def _become_closed(self) -> None:
        self.state = TcpState.CLOSED
        self.host._unregister_conn(self)
        if not self.closed_event.triggered:
            self.closed_event.succeed(self)

    def _handle_listen(self, segment: Segment) -> None:
        """Handle a segment arriving at a LISTEN socket: spawn a child."""
        if not segment.is_syn:
            return  # stray segment to a listener: ignore
        child = TcpSocket(self.host, self.local)
        child.remote = segment.src
        child.state = TcpState.SYN_RECEIVED
        child.rcv_nxt = segment.seq + 1
        self.host._register_conn(child)
        child._emit(_SYN_ACK)
        child.snd_nxt += 1
        child._on_accept = self._on_accept

    def _handle(self, segment: Segment) -> None:
        if segment.is_rst:
            self.reset = True
            self._become_closed()
            return
        handler = _HANDLERS.get(self.state)
        if handler is None:
            raise ProtocolError(
                f"{self.local}: segment in unexpected state {self.state}")
        handler(self, segment)

    def _accept_data(self, segment: Segment) -> None:
        """Common in-order data/FIN acceptance used by synchronized states."""
        if segment.payload_len == 0 and not segment.is_fin:
            return  # pure ACK
        if segment.seq != self.rcv_nxt:
            raise ProtocolError(
                f"{self.local}: expected seq {self.rcv_nxt}, "
                f"got {segment.seq} (reliable network => bug)")
        self.rcv_nxt += segment.seq_space()
        if segment.payload_len:
            self.inbox.put((segment.payload, segment.payload_len))
        # ACKing an aggregated segment stands for the per-fragment ACKs
        # the segment path would have sent
        self._emit(_ACK, frags=segment.frags)

    def _in_syn_sent(self, segment: Segment) -> None:
        if not (segment.is_syn and segment.is_ack):
            raise ProtocolError(f"{self.local}: expected SYN-ACK")
        self.rcv_nxt = segment.seq + 1
        self.state = TcpState.ESTABLISHED
        self._emit(_ACK)
        assert self._connect_event is not None
        self._connect_event.succeed(self)

    def _in_syn_received(self, segment: Segment) -> None:
        if segment.is_ack:
            self.state = TcpState.ESTABLISHED
            if self._on_accept is not None:
                self._on_accept(self)
            # The handshake ACK may already carry data (common for HTTP).
            if segment.payload_len or segment.is_fin:
                self._accept_data(segment)

    def _in_established(self, segment: Segment) -> None:
        fin = segment.is_fin
        self._accept_data(segment)
        if fin:
            self.state = TcpState.CLOSE_WAIT

    def _in_fin_wait_1(self, segment: Segment) -> None:
        if segment.is_fin:
            # Simultaneous close or FIN+ACK combined.
            self._accept_data(segment)
            self._become_closed()  # TIME_WAIT collapsed
        elif segment.is_ack and segment.ack >= self.snd_nxt:
            self.state = TcpState.FIN_WAIT_2
        else:
            self._accept_data(segment)

    def _in_fin_wait_2(self, segment: Segment) -> None:
        fin = segment.is_fin
        self._accept_data(segment)
        if fin:
            self._become_closed()  # TIME_WAIT collapsed

    def _in_close_wait(self, segment: Segment) -> None:
        self._accept_data(segment)

    def _in_last_ack(self, segment: Segment) -> None:
        if segment.is_ack and segment.ack >= self.snd_nxt:
            self._become_closed()


#: Per-state segment dispatch, built once at import.  ``_handle`` used to
#: rebuild a seven-entry dict of bound methods for every delivered segment;
#: the unbound functions here are called as ``handler(sock, segment)``.
_HANDLERS: dict[TcpState, Any] = {
    TcpState.SYN_SENT: TcpSocket._in_syn_sent,
    TcpState.SYN_RECEIVED: TcpSocket._in_syn_received,
    TcpState.ESTABLISHED: TcpSocket._in_established,
    TcpState.FIN_WAIT_1: TcpSocket._in_fin_wait_1,
    TcpState.FIN_WAIT_2: TcpSocket._in_fin_wait_2,
    TcpState.CLOSE_WAIT: TcpSocket._in_close_wait,
    TcpState.LAST_ACK: TcpSocket._in_last_ack,
}
