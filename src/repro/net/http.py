"""HTTP request/response model.

The simulator never renders real bytes; requests and responses are structured
objects whose *sizes* drive the network and disk models, and whose *URLs*
drive the content-aware routing.  Both HTTP/1.0 and HTTP/1.1 semantics are
modelled because the paper's distributor releases pre-forked connections
differently for the two (it sets the FIN flag itself when relaying the last
packet of an HTTP/1.0 response).
"""

from __future__ import annotations

import dataclasses
import enum
import itertools
from typing import Optional

__all__ = ["HttpVersion", "HttpMethod", "HttpRequest", "HttpResponse",
           "split_path", "parent_dirs", "REQUEST_HEADER_BYTES",
           "RESPONSE_HEADER_BYTES"]

#: Typical on-the-wire header sizes (bytes) used for transfer accounting.
REQUEST_HEADER_BYTES = 320
RESPONSE_HEADER_BYTES = 240

_request_ids = itertools.count(1)


class HttpVersion(enum.Enum):
    HTTP_1_0 = "HTTP/1.0"
    HTTP_1_1 = "HTTP/1.1"

    @property
    def persistent_by_default(self) -> bool:
        """HTTP/1.1 connections are persistent unless closed explicitly."""
        return self is HttpVersion.HTTP_1_1


class HttpMethod(enum.Enum):
    GET = "GET"
    POST = "POST"
    HEAD = "HEAD"


#: Memoized successful splits.  URLs in a run come from a fixed catalog
#: (the paper's site is ~8 700 objects), so the working set is small and
#: splitting each URL once is enough; the cap only guards pathological
#: callers.  Failures are never cached (they must keep raising).
_split_cache: dict[str, tuple[str, ...]] = {}
_SPLIT_CACHE_CAP = 65536


def split_path(url: str) -> tuple[str, ...]:
    """Split an absolute URL path into its segments.

    ``/cgi-bin/search.cgi?q=x`` -> ``("cgi-bin", "search.cgi")``; the query
    string is not part of the routing key (the paper routes on the document,
    not its arguments).
    """
    cached = _split_cache.get(url)
    if cached is not None:
        return cached
    path = url.split("?", 1)[0].split("#", 1)[0]
    if not path.startswith("/"):
        raise ValueError(f"URL path must be absolute, got {url!r}")
    segments = tuple(seg for seg in path.split("/") if seg)
    if len(_split_cache) < _SPLIT_CACHE_CAP:
        _split_cache[url] = segments
    return segments


def parent_dirs(url: str) -> list[str]:
    """All directory prefixes of a URL path, shortest first.

    ``/a/b/c.html`` -> ``["/", "/a", "/a/b"]``.
    """
    segs = split_path(url)
    out = ["/"]
    for i in range(1, len(segs)):
        out.append("/" + "/".join(segs[:i]))
    return out


@dataclasses.dataclass(slots=True)
class HttpRequest:
    """A client HTTP request."""

    url: str
    method: HttpMethod = HttpMethod.GET
    version: HttpVersion = HttpVersion.HTTP_1_1
    keep_alive: Optional[bool] = None   # explicit Connection: header
    body_bytes: int = 0
    client_id: str = ""
    request_id: int = dataclasses.field(
        default_factory=lambda: next(_request_ids))
    issued_at: float = 0.0
    #: repro.obs correlation id, stamped by a tracing front end at submit
    #: time so ``route()`` implementations can tag their lookup events
    #: (0 = untraced)
    trace_id: int = 0

    def __post_init__(self):
        # Validate eagerly so malformed URLs fail at creation, not routing.
        split_path(self.url)

    @property
    def path_segments(self) -> tuple[str, ...]:
        return split_path(self.url)

    @property
    def persistent(self) -> bool:
        """Whether the connection stays open after this exchange."""
        if self.keep_alive is not None:
            return self.keep_alive
        return self.version.persistent_by_default

    @property
    def wire_bytes(self) -> int:
        return REQUEST_HEADER_BYTES + self.body_bytes


@dataclasses.dataclass(slots=True)
class HttpResponse:
    """A server HTTP response."""

    request: HttpRequest
    status: int = 200
    content_length: int = 0
    served_by: str = ""
    cache_hit: bool = False
    service_time: float = 0.0      # backend processing time (seconds)
    completed_at: float = 0.0

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    @property
    def wire_bytes(self) -> int:
        return RESPONSE_HEADER_BYTES + self.content_length
