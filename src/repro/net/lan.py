"""The switched fast-ethernet LAN model.

The paper's testbed connects every node with 100 Mbps fast ethernet,
"in order to allow enough throughput to show the clustered server's
capabilities".  The experiments depend on two properties of that network:

* per-node NIC bandwidth is finite, so a node pushing many large responses
  serializes them (this is what melts the NFS server in Figure 2);
* the switch itself is not the bottleneck (switched, not shared, ethernet).

We model each NIC as a full-duplex pair of transmit/receive channels with a
byte rate; a transfer holds the sender's TX channel and the receiver's RX
channel for ``bytes / min(rates)`` plus propagation latency.  Acquiring TX
before RX is deadlock-free because RX holders never wait on anything.
"""

from __future__ import annotations

from typing import Generator, Iterable, Optional

from ..sim import Resource, RngStream, SimEvent, Simulator

__all__ = ["Nic", "Lan"]

#: Protocol framing overhead (ethernet + IP + TCP headers per MSS).
WIRE_OVERHEAD = 1.055


class Nic:
    """A full-duplex network interface with a fixed line rate."""

    def __init__(self, sim: Simulator, mbps: float = 100.0, name: str = ""):
        if mbps <= 0:
            raise ValueError("line rate must be positive")
        self.sim = sim
        self.name = name
        self.mbps = mbps
        self.bytes_per_second = mbps * 1e6 / 8.0
        self.tx = Resource(sim, capacity=1, name=f"{name}.tx")
        self.rx = Resource(sim, capacity=1, name=f"{name}.rx")
        self.bytes_sent = 0
        self.bytes_received = 0

    def serialization_time(self, nbytes: int) -> float:
        """Wire time to clock ``nbytes`` (plus framing) through this NIC."""
        return nbytes * WIRE_OVERHEAD / self.bytes_per_second

    def utilization_out(self) -> float:
        return self.tx.utilization()

    def utilization_in(self) -> float:
        return self.rx.utilization()


class Lan:
    """A switched LAN: transfers contend only on the endpoints' NICs."""

    def __init__(self, sim: Simulator, latency: float = 0.2e-3):
        self.sim = sim
        self.latency = latency
        self.total_transfers = 0
        self.total_bytes = 0
        # -- fault-injection state (driven by repro.chaos) ------------------
        #: additional one-way latency per transfer (congestion / bad cable)
        self.extra_latency = 0.0
        #: probability that a transfer needs TCP retransmissions first
        self.loss_rate = 0.0
        #: delay one retransmission round costs (a short RTO)
        self.retransmit_delay = 0.05
        self._loss_rng: Optional[RngStream] = None
        #: node prefixes currently cut off from the rest of the switch
        self._partitioned: frozenset[str] = frozenset()
        self._heal_event: Optional[SimEvent] = None
        self.retransmissions = 0
        self.transfers_blocked = 0
        #: transfers completed via the single-event fast path (observability
        #: only -- never part of the golden/metrics equivalence surface)
        self.fast_transfers = 0

    # -- fault injection hooks (repro.chaos) --------------------------------
    def set_loss(self, rate: float, rng: RngStream,
                 retransmit_delay: float = 0.05) -> None:
        """Make transfers lossy: with probability ``rate`` a transfer pays
        one retransmission round (repeatedly, geometrically) before its
        bytes go through -- TCP semantics, so nothing is silently dropped.
        """
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"loss rate must be in [0, 1), got {rate}")
        if retransmit_delay <= 0:
            raise ValueError("retransmit_delay must be positive")
        self.loss_rate = rate
        self._loss_rng = rng
        self.retransmit_delay = retransmit_delay

    def clear_loss(self) -> None:
        self.loss_rate = 0.0
        self._loss_rng = None

    def add_delay(self, extra: float) -> None:
        """Add ``extra`` seconds of one-way latency (additive, revertable)."""
        if extra < 0:
            raise ValueError("extra latency must be non-negative")
        self.extra_latency += extra

    def remove_delay(self, extra: float) -> None:
        self.extra_latency = max(0.0, self.extra_latency - extra)

    def set_partition(self, nodes: Iterable[str]) -> None:
        """Cut the named endpoints (NIC-name prefixes before the first
        ``.``) off from everyone else.  Cross-partition transfers block --
        TCP keeps retrying -- until :meth:`heal_partition`."""
        self._partitioned = frozenset(nodes)

    def heal_partition(self) -> None:
        """End the partition; every blocked transfer resumes."""
        self._partitioned = frozenset()
        event, self._heal_event = self._heal_event, None
        if event is not None:
            event.succeed()

    @property
    def partitioned_nodes(self) -> frozenset[str]:
        return self._partitioned

    @staticmethod
    def _endpoint(nic: Nic) -> str:
        return nic.name.split(".", 1)[0]

    def _crosses_partition(self, src: Nic, dst: Nic) -> bool:
        if not self._partitioned:
            return False
        return ((self._endpoint(src) in self._partitioned) !=
                (self._endpoint(dst) in self._partitioned))

    def _heal_wait(self) -> SimEvent:
        if self._heal_event is None:
            self._heal_event = SimEvent(self.sim)
        return self._heal_event

    def transfer_time(self, src: Nic, dst: Nic, nbytes: int) -> float:
        """Uncontended duration of a transfer (excluding queueing)."""
        a = src.bytes_per_second
        b = dst.bytes_per_second
        return nbytes * WIRE_OVERHEAD / (a if a <= b else b) + self.latency

    def transfer(self, src: Nic, dst: Nic,
                 nbytes: int) -> Generator:
        """Move ``nbytes`` from ``src`` to ``dst``; use ``yield from``.

        Blocks while either endpoint NIC is busy, then holds both channels
        for the serialization time.  Returns the completion time.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        ks = self.sim.kernel_stats
        if (self.sim.fast_path and self._loss_rng is None
                and not self._partitioned and self.extra_latency == 0.0):
            # No active fault: acquire each endpoint channel synchronously
            # when it is idle (bookkeeping-identical to the event-based
            # grant, see Resource.try_acquire) and queue event-accurately
            # on a busy one; the hold itself is one pooled timeout.  When
            # both channels are idle this is the classic single-event
            # fast transfer.  Any chaos fault (loss/delay/partition)
            # falls through to the segment-accurate path below.
            duration = self.transfer_time(src, dst, nbytes)
            tx_sync = True
            tx_req = src.tx.try_acquire()
            if tx_req is None:
                tx_sync = False
                if ks is not None:
                    ks.on_fast_path("lan", False)
                tx_req = yield src.tx.request()
            try:
                rx_req = dst.rx.try_acquire()
                if rx_req is not None:
                    try:
                        # hit = both channels idle at entry; a queued TX
                        # already counted as a fallback above
                        if tx_sync:
                            self.fast_transfers += 1
                            if ks is not None:
                                ks.on_fast_path("lan", True)
                        yield self.sim.hot_timeout(duration)
                    finally:
                        dst.rx.release(rx_req)
                else:
                    if tx_sync and ks is not None:
                        ks.on_fast_path("lan", False)
                    # Busy receiver: grant-and-hold -- the RX grant event
                    # fires once, when the hold expires (Resource.request)
                    rx_req = yield dst.rx.request(hold=duration)
                    dst.rx.release(rx_req)
            finally:
                src.tx.release(tx_req)
            self.total_transfers += 1
            self.total_bytes += nbytes
            src.bytes_sent += nbytes
            dst.bytes_received += nbytes
            return self.sim.now
        if ks is not None and self.sim.fast_path:
            ks.on_fast_path("lan", False)
        # Faults are paid *before* acquiring either channel: a transfer
        # stuck behind a partition must not hold the sender's TX and
        # head-of-line-block unrelated traffic.
        while self._crosses_partition(src, dst):
            self.transfers_blocked += 1
            yield self._heal_wait()
        # re-checked each round: the fault may revert mid-retransmission
        while (self._loss_rng is not None and
               self._loss_rng.random() < self.loss_rate):
            self.retransmissions += 1
            yield self.sim.timeout(self.retransmit_delay)
        tx_req = yield src.tx.request()
        try:
            # the RX wait is interruptible: TX must not leak if this
            # transfer is torn down while queued for the receiver
            rx_req = yield dst.rx.request()
            try:
                yield self.sim.timeout(self.transfer_time(src, dst, nbytes)
                                       + self.extra_latency)
            finally:
                dst.rx.release(rx_req)
        finally:
            src.tx.release(tx_req)
        self.total_transfers += 1
        self.total_bytes += nbytes
        src.bytes_sent += nbytes
        dst.bytes_received += nbytes
        return self.sim.now
