"""The switched fast-ethernet LAN model.

The paper's testbed connects every node with 100 Mbps fast ethernet,
"in order to allow enough throughput to show the clustered server's
capabilities".  The experiments depend on two properties of that network:

* per-node NIC bandwidth is finite, so a node pushing many large responses
  serializes them (this is what melts the NFS server in Figure 2);
* the switch itself is not the bottleneck (switched, not shared, ethernet).

We model each NIC as a full-duplex pair of transmit/receive channels with a
byte rate; a transfer holds the sender's TX channel and the receiver's RX
channel for ``bytes / min(rates)`` plus propagation latency.  Acquiring TX
before RX is deadlock-free because RX holders never wait on anything.
"""

from __future__ import annotations

from typing import Generator

from ..sim import Resource, Simulator

__all__ = ["Nic", "Lan"]

#: Protocol framing overhead (ethernet + IP + TCP headers per MSS).
WIRE_OVERHEAD = 1.055


class Nic:
    """A full-duplex network interface with a fixed line rate."""

    def __init__(self, sim: Simulator, mbps: float = 100.0, name: str = ""):
        if mbps <= 0:
            raise ValueError("line rate must be positive")
        self.sim = sim
        self.name = name
        self.mbps = mbps
        self.bytes_per_second = mbps * 1e6 / 8.0
        self.tx = Resource(sim, capacity=1, name=f"{name}.tx")
        self.rx = Resource(sim, capacity=1, name=f"{name}.rx")
        self.bytes_sent = 0
        self.bytes_received = 0

    def serialization_time(self, nbytes: int) -> float:
        """Wire time to clock ``nbytes`` (plus framing) through this NIC."""
        return nbytes * WIRE_OVERHEAD / self.bytes_per_second

    def utilization_out(self) -> float:
        return self.tx.utilization()

    def utilization_in(self) -> float:
        return self.rx.utilization()


class Lan:
    """A switched LAN: transfers contend only on the endpoints' NICs."""

    def __init__(self, sim: Simulator, latency: float = 0.2e-3):
        self.sim = sim
        self.latency = latency
        self.total_transfers = 0
        self.total_bytes = 0

    def transfer_time(self, src: Nic, dst: Nic, nbytes: int) -> float:
        """Uncontended duration of a transfer (excluding queueing)."""
        rate = min(src.bytes_per_second, dst.bytes_per_second)
        return nbytes * WIRE_OVERHEAD / rate + self.latency

    def transfer(self, src: Nic, dst: Nic,
                 nbytes: int) -> Generator:
        """Move ``nbytes`` from ``src`` to ``dst``; use ``yield from``.

        Blocks while either endpoint NIC is busy, then holds both channels
        for the serialization time.  Returns the completion time.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        tx_req = yield src.tx.request()
        rx_req = yield dst.rx.request()
        try:
            yield self.sim.timeout(self.transfer_time(src, dst, nbytes))
        finally:
            dst.rx.release(rx_req)
            src.tx.release(tx_req)
        self.total_transfers += 1
        self.total_bytes += nbytes
        src.bytes_sent += nbytes
        dst.bytes_received += nbytes
        return self.sim.now
